(* The pure reference model of fbuf semantics.

   This module never touches the real stack: it is an executable
   restatement of the paper's rules (and of this implementation's
   documented refinements of them) against which the driver diffs the real
   Allocator/Region/Vm_map/Transfer state after every operation. Keeping
   it allocation-level simple — assoc lists, no hashtables shared with the
   subject — is deliberate: a bug would have to be implemented twice, in
   two very different shapes, to go unnoticed.

   Content visibility is the subtle part. Receivers are granted *rights*,
   not mappings; mappings materialize on first touch. The model therefore
   tracks, per buffer and per non-originator domain, which of three
   mapping states the domain is in:

   - [materialized]: it touched the buffer while the originator's frames
     were resident, so it holds real-frame mappings and sees live bytes
     (including later originator scribbles on volatile buffers);
   - [stale_zero]: it touched the range when it had no resolvable claim
     (no rights, a parked buffer it never materialized, or a buffer whose
     frames were paged out), so the dead page is mapped over the range and
     it reads zeros until those mappings are cleared (by a grant, a
     pageout, an uncached free, or teardown);
   - neither: no mappings; the next touch classifies it. *)

type phase = Active | Parked | Dead

type fbuf = {
  key : int;  (* stable driver handle, independent of real fbuf ids *)
  alloc : int;
  npages : int;
  cached : bool;
  volatile : bool;
  originator : int;  (* Pd ids throughout *)
  path : int list;
  mutable real_id : int;
  mutable phase : phase;
  mutable secured : bool;
  mutable refs : (int * int) list;  (* dom -> count; entries > 0 only *)
  mutable mapped_in : int list;  (* granted receivers, no duplicates *)
  mutable materialized : int list;
  mutable stale_zero : int list;
  mutable expected : bytes;  (* contents every live-byte reader must see *)
  mutable resident : bool;  (* originator frames present *)
  mutable charged : bool;
      (* mirror of Fbuf.accounted: counted in the path's held account.
         Set on (re)allocation, cleared on park-without-frames, pageout
         and death — never by the faults that can restore [resident] *)
  mutable last_alloc_us : float;
}

type alloc_spec = {
  a_idx : int;
  a_cached : bool;
  a_volatile : bool;
  a_path : int list;  (* originator first *)
  a_policy : (int * float) option;
      (* buffer-sharing (rank, weight) when the path is policy-managed *)
}

type allocator = {
  spec : alloc_spec;
  mutable classes : (int * fbuf list) list;  (* npages -> LIFO stack *)
  mutable parked_len : int;
  mutable live : int;
}

type t = {
  page_size : int;
  alpha : float;  (* buffer-sharing threshold scale, see the policy mirror *)
  allocs : allocator array;
  mutable rev_fbufs : fbuf list;
  mutable next_key : int;
  (* TLB discipline mirror, see the window/generation section below. *)
  windows : (int, unit) Hashtbl.t;
  mutable gens : (int * int) list;  (* dom -> expected generation *)
}

let create ~page_size ?(alpha = 0.0) specs =
  {
    page_size;
    alpha;
    allocs =
      Array.map
        (fun spec -> { spec; classes = []; parked_len = 0; live = 0 })
        specs;
    rev_fbufs = [];
    next_key = 0;
    windows = Hashtbl.create 256;
    gens = [];
  }

let all t = List.rev t.rev_fbufs
let allocator t i = t.allocs.(i)
let size_bytes t fb = fb.npages * t.page_size

let ref_count fb dom =
  match List.assoc_opt dom fb.refs with Some n -> n | None -> 0

let total_refs fb = List.fold_left (fun acc (_, n) -> acc + n) 0 fb.refs
let holders fb = List.map fst fb.refs

let add_ref fb dom =
  fb.refs <- (dom, ref_count fb dom + 1) :: List.remove_assoc dom fb.refs

let drop_ref fb dom =
  let n = ref_count fb dom in
  fb.refs <- List.remove_assoc dom fb.refs;
  if n > 1 then fb.refs <- (dom, n - 1) :: fb.refs

let remove l x = List.filter (fun y -> y <> x) l

(* -- free-list mirror ------------------------------------------------- *)

let park_stack a npages =
  match List.assoc_opt npages a.classes with Some s -> s | None -> []

let push_parked a fb =
  a.classes <- (fb.npages, fb :: park_stack a fb.npages)
                :: List.remove_assoc fb.npages a.classes;
  a.parked_len <- a.parked_len + 1

let peek_parked a npages =
  match park_stack a npages with [] -> None | fb :: _ -> Some fb

let pop_parked a npages =
  match park_stack a npages with
  | [] -> None
  | fb :: rest ->
      a.classes <- (npages, rest) :: List.remove_assoc npages a.classes;
      a.parked_len <- a.parked_len - 1;
      Some fb

let parked_of a = List.concat_map snd a.classes
let parked_len (a : allocator) = a.parked_len
let live_count a = a.live

(* -- allocation ------------------------------------------------------- *)

(* [Some fb]: the real allocator must reuse exactly this parked buffer
   (LIFO within the size class); [None]: it must take the fresh path. *)
let predict_alloc t ~alloc ~npages =
  let a = t.allocs.(alloc) in
  if a.spec.a_cached then peek_parked a npages else None

let commit_hit t fb ~now =
  let a = t.allocs.(fb.alloc) in
  (match pop_parked a fb.npages with
  | Some top when top == fb -> ()
  | _ -> invalid_arg "Model.commit_hit: not the predicted buffer");
  fb.phase <- Active;
  fb.refs <- [ (List.hd a.spec.a_path, 1) ];
  fb.charged <- true;
  fb.last_alloc_us <- now;
  a.live <- a.live + 1;
  ignore t

let commit_fresh t ~alloc ~npages ~real_id ~contents ~now =
  let a = t.allocs.(alloc) in
  let fb =
    {
      key = t.next_key;
      alloc;
      npages;
      cached = a.spec.a_cached;
      volatile = a.spec.a_volatile;
      originator = List.hd a.spec.a_path;
      path = a.spec.a_path;
      real_id;
      phase = Active;
      secured = false;
      refs = [ (List.hd a.spec.a_path, 1) ];
      mapped_in = [];
      materialized = [];
      stale_zero = [];
      expected = contents;
      resident = true;
      charged = true;
      last_alloc_us = now;
    }
  in
  t.next_key <- t.next_key + 1;
  t.rev_fbufs <- fb :: t.rev_fbufs;
  a.live <- a.live + 1;
  fb

(* -- rights and visibility -------------------------------------------- *)

(* Originator write permission: never after securing, never on a dead
   buffer; parked buffers are writable (parking restores write access). *)
let may_write fb = fb.phase <> Dead && not fb.secured

type view = Content | Zeros

(* What a read by [dom] must return, and the mapping-state transition the
   touch causes. Callers must read the whole range (partial touches would
   make per-domain mapping state non-binary). *)
let read_view fb ~dom =
  if dom = fb.originator then begin
    fb.resident <- true;
    Content (* [expected] is zeroed on pageout, so Content covers it *)
  end
  else if List.mem dom fb.stale_zero then Zeros
  else if List.mem dom fb.materialized then Content
  else if fb.phase = Active && ref_count fb dom > 0 && fb.resident then begin
    fb.materialized <- dom :: fb.materialized;
    Content
  end
  else begin
    (* No resolvable claim: the fault maps the dead page over the range. *)
    fb.stale_zero <- dom :: fb.stale_zero;
    Zeros
  end

let expected_bytes t fb = function
  | Content -> fb.expected
  | Zeros -> Bytes.make (size_bytes t fb) '\000'

(* -- transfer --------------------------------------------------------- *)

type refusal = R_dead | R_invalid

let send_check fb ~src ~dst =
  if fb.phase <> Active then Error R_dead
  else if ref_count fb src = 0 then Error R_invalid
  else if src = dst then Error R_invalid
  else if fb.cached && not (List.mem dst fb.path) then Error R_invalid
  else Ok ()

let apply_send fb ~dst =
  if (not fb.volatile) && not fb.secured then fb.secured <- true;
  if dst <> fb.originator && not (List.mem dst fb.mapped_in) then begin
    (* The grant clears any stale mappings left from an earlier life of
       these addresses, so the receiver faults afresh. *)
    fb.mapped_in <- dst :: fb.mapped_in;
    fb.stale_zero <- remove fb.stale_zero dst
  end;
  add_ref fb dst

let secure_check fb = if fb.phase <> Active then Error R_dead else Ok ()
let apply_secure fb = fb.secured <- true

let free_check fb ~dom =
  if fb.phase <> Active then Error R_dead
  else if ref_count fb dom = 0 then Error R_invalid
  else Ok ()

let apply_free t fb ~dom =
  drop_ref fb dom;
  if (not fb.cached) && dom <> fb.originator && ref_count fb dom = 0 then begin
    (* Uncached receivers lose their mappings with their last reference
       (an earlier free with references outstanding keeps the mapping, as
       the subject does). *)
    fb.mapped_in <- remove fb.mapped_in dom;
    fb.materialized <- remove fb.materialized dom;
    fb.stale_zero <- remove fb.stale_zero dom
  end;
  if total_refs fb = 0 then begin
    let a = t.allocs.(fb.alloc) in
    a.live <- a.live - 1;
    if fb.cached then begin
      fb.phase <- Parked;
      fb.secured <- false;
      if not fb.resident then fb.charged <- false;
      push_parked a fb
    end
    else begin
      fb.phase <- Dead;
      fb.mapped_in <- [];
      fb.materialized <- [];
      fb.stale_zero <- [];
      fb.resident <- false;
      fb.charged <- false;
      fb.expected <- Bytes.make (size_bytes t fb) '\000'
    end
  end

(* -- pageout ---------------------------------------------------------- *)

(* Victims of [Allocator.reclaim ~max_fbufs]: resident parked buffers,
   least recently allocated first, ties on allocation order. *)
let reclaim_victims t ~alloc ~max_fbufs =
  let resident =
    List.filter (fun fb -> fb.resident) (parked_of t.allocs.(alloc))
  in
  let by_age =
    List.sort
      (fun x y ->
        match compare x.last_alloc_us y.last_alloc_us with
        | 0 -> compare x.real_id y.real_id
        | c -> c)
      resident
  in
  List.filteri (fun i _ -> i < max 0 max_fbufs) by_age

(* -- buffer-sharing policy mirror ------------------------------------- *)

(* The model's restatement of Fbufs_policy. The real policy maintains a
   path's held-page account event-wise, through allocator grow/shrink
   hooks; the model recomputes it from per-buffer state every time it is
   asked — the pages of the path's Active fbufs plus its parked fbufs
   still carrying their charge bit. The two agreeing after every step is
   what makes the policy checking differential: an accounting leak on
   either side (a missed hook, a double shrink) shows up as a held-page
   divergence at the next admission decision. Thresholds use the same
   arithmetic shape as the subject ([weight *. alpha *. free], truncated)
   so agreement is exact, not within-epsilon. *)

let held t ~alloc =
  List.fold_left
    (fun acc fb ->
      if
        fb.alloc = alloc
        && (fb.phase = Active || (fb.phase = Parked && fb.charged))
      then acc + fb.npages
      else acc)
    0 (all t)

let policy_threshold t ~alloc ~free =
  match t.allocs.(alloc).spec.a_policy with
  | None -> max_int
  | Some (_, w) -> int_of_float (w *. t.alpha *. float_of_int free)

let over_threshold t ~alloc ~free =
  held t ~alloc > policy_threshold t ~alloc ~free

(* Reclaim-before-drop victim selection: the coldest parked still-resident
   buffer of a strictly-lower-rank path that is over its own threshold at
   the given free level — lowest rank first, then least recently
   allocated, then fbuf id (total, ids are unique). *)
let next_victim t ~requester ~free =
  match t.allocs.(requester).spec.a_policy with
  | None -> None
  | Some (rrank, _) ->
      let eligible fb =
        fb.phase = Parked && fb.resident
        &&
        match t.allocs.(fb.alloc).spec.a_policy with
        | None -> false
        | Some (vrank, _) -> vrank < rrank && over_threshold t ~alloc:fb.alloc ~free
      in
      let key fb =
        let r =
          match t.allocs.(fb.alloc).spec.a_policy with
          | Some (r, _) -> r
          | None -> max_int
        in
        (r, fb.last_alloc_us, fb.real_id)
      in
      List.fold_left
        (fun best fb ->
          if not (eligible fb) then best
          else
            match best with
            | Some b when key b < key fb -> best
            | _ -> Some fb)
        None (all t)

(* The order a policy-driven pageout sweep must reclaim in: every parked
   still-resident buffer of the daemon's registered allocators, buffers of
   over-threshold paths first (judged once, at the sweep-start free
   level), then rank, then LRU, then id. The daemon reclaims a prefix of
   this list. *)
let balance_order t ~allocs ~free =
  let cands =
    List.filter
      (fun fb -> List.mem fb.alloc allocs && fb.phase = Parked && fb.resident)
      (all t)
  in
  let key fb =
    match t.allocs.(fb.alloc).spec.a_policy with
    | None -> (1, max_int, fb.last_alloc_us, fb.real_id)
    | Some (r, _) ->
        ( (if over_threshold t ~alloc:fb.alloc ~free then 0 else 1),
          r,
          fb.last_alloc_us,
          fb.real_id )
  in
  List.sort (fun a b -> compare (key a) (key b)) cands

(* -- TLB shootdown windows and generations ---------------------------- *)

(* Mirror of the deferred-shootdown discipline (Pmap/Tlb). The model
   cannot predict which pages are TLB-resident — replacement is random in
   the subject — so instead of the exact pending set it tracks the
   sanctioned superset: a page enters the window set when a teardown
   event that is allowed to defer its shootdown touches it (a free, a
   pageout, an IPC deferred-free, a COW invalidation on send). The driver
   checks after every step that every shootdown actually queued in the
   real TLB falls on a windowed page — a pending on a page that never
   saw a sanctioned teardown means a shootdown was deferred on the wrong
   path. Windows only accumulate; precision comes from the companion
   per-entry audit in the driver, not from closing them.

   Generations move only on explicit ASID flushes, which the replay world
   never issues, so the expected value pins any stray [Tlb.flush_asid] a
   future change might introduce. The windows hashtable is private to the
   model (nothing here is shared with the subject). *)

let window_open t ~vpn = Hashtbl.replace t.windows vpn ()
let window_sanctions t ~vpn = Hashtbl.mem t.windows vpn

let expected_generation t ~dom =
  match List.assoc_opt dom t.gens with Some g -> g | None -> 0

let note_asid_flush t ~dom =
  t.gens <- (dom, expected_generation t ~dom + 1) :: List.remove_assoc dom t.gens

let apply_reclaim t fb =
  fb.resident <- false;
  fb.charged <- false;
  fb.expected <- Bytes.make (size_bytes t fb) '\000';
  (* reclaim_memory unmaps (and forgets) the granted receivers; dead-page
     mappings held by domains that were never granted survive it. *)
  fb.stale_zero <-
    List.filter (fun d -> not (List.mem d fb.mapped_in)) fb.stale_zero;
  fb.mapped_in <- [];
  fb.materialized <- []
