open Fbufs_sim
open Fbufs_vm
open Fbufs
module Msg = Fbufs_msg.Msg
module Integrated = Fbufs_msg.Integrated
module Ipc = Fbufs_ipc.Ipc
module Testbed = Fbufs_harness.Testbed
module Policy = Fbufs_policy.Policy

(* The differential driver.

   One deterministic world per replay: a machine seeded with the checker
   seed, three user domains, four allocators covering the variant cross
   product (cached_volatile on path a->b->c, cached_only on a->b, an
   uncached volatile default allocator owned by a, and plain on b->c),
   two a->b connections (Rebuild and Integrated), and a pageout daemon
   watching the cached allocators. Physical memory is kept small (2048
   frames) so memory pressure and pageout are ordinary events rather than
   staged ones.

   Three of the four allocators run under a dynamic buffer-sharing policy
   (latency on the cached_volatile path, bulk on cached_only, control on
   the uncached default), with a deliberately tight alpha so thresholds
   bind during ordinary replays; the fourth stays unmanaged to keep the
   hook-free paths (and the region's own quota refusals) covered. The
   policy records every admission decision, and [verify_policy] re-derives
   each one — held pages, threshold, victim choice, verdict — from the
   model's independent restatement of the arithmetic.

   Each step resolves the op against the model, computes the expected
   outcome (success, a documented refusal, zeros, or a protection fault),
   runs the real operation, applies the model transition, and then diffs
   every tracked buffer's observable state plus the allocator counters;
   the full structural audit runs every [audit_every] steps and at the
   end. All skips are deterministic functions of (seed, prefix), which is
   what makes shrinking sound. *)

exception Check_failed of string

let fail fmt = Fmt.kstr (fun s -> raise (Check_failed s)) fmt

type report = {
  total : int;
  executed : int;
  skipped : int;
  failure : (int * Op.t * string) option;
}

type state = {
  m : Machine.t;
  region : Region.t;
  kernel : Pd.t;
  doms : Pd.t array;  (* [| a; b; c |] *)
  allocs : Allocator.t array;
  conns : Ipc.conn array;
  daemon : Pageout.t;
  pol : Policy.t;
  managed : Policy.klass option array;  (* per allocator index *)
  model : Model.t;
  reals : (int, Fbuf.t) Hashtbl.t;  (* model key -> real fbuf *)
  ps : int;
  mutable next_eph : int;
  mutable ephs : Pd.t list;
      (* every Crash-spawned domain, kept so the TLB audit can resolve
         their ASIDs and pmaps after termination *)
  mutable step : int;
  (* Expected metric counts, per allocator index, derived from the
     model's own allocation decisions. When the replay runs metered,
     [verify_metrics] diffs the registry against these. *)
  exp_hit : int array;
  exp_fresh : int array;
  exp_reclaimed : int array;
  exp_admitted : int array;
  exp_dropped : int array;
  exp_evicted : int array;  (* indexed by the *victim's* allocator *)
  exp_thr : int option array;  (* last admission-check threshold per path *)
}

let nframes = 2048
let audit_every = 25

(* Tight enough that thresholds bind under the replay's ordinary pressure
   (at 2048 free frames: bulk 8 pages, latency 24, control 65), loose
   enough that single-digit page requests usually admit on a drained
   pool. *)
let policy_alpha = 0.004

let make_state ~seed =
  let tb = Testbed.create ~name:"fbufs-check" ~nframes ~seed () in
  (* Replays always record causal spans: the span sink is one more
     observable to diff (see [verify_spans]), and recording is passive —
     it never feeds back into the simulation. *)
  Machine.set_spans tb.Testbed.m (Some (Fbufs_span.Span.create ()));
  let a = Testbed.user_domain tb "dom_a" in
  let b = Testbed.user_domain tb "dom_b" in
  let c = Testbed.user_domain tb "dom_c" in
  let allocs =
    [|
      Testbed.allocator tb ~domains:[ a; b; c ] Fbuf.cached_volatile;
      Testbed.allocator tb ~domains:[ a; b ] Fbuf.cached_only;
      Testbed.allocator tb ~domains:[ a ] Fbuf.volatile_only;
      Testbed.allocator tb ~domains:[ b; c ] Fbuf.plain;
    |]
  in
  let conns =
    [|
      Ipc.connect tb.Testbed.region ~src:a ~dst:b ();
      Ipc.connect tb.Testbed.region ~src:a ~dst:b ~mode:Ipc.Integrated ();
    |]
  in
  let pol =
    Policy.create tb.Testbed.region (Policy.Fb_dynamic { alpha = policy_alpha })
  in
  Policy.set_recording pol true;
  let managed =
    [| Some Policy.Latency; Some Policy.Bulk; Some Policy.Control; None |]
  in
  Array.iteri
    (fun i k ->
      match k with None -> () | Some klass -> Policy.register pol allocs.(i) ~klass)
    managed;
  (* The daemon sweeps in the policy's order (over-threshold paths first),
     so [run_balance] can demand the reclaimed set be a prefix of the
     model's own ordering rather than merely a legal victim set. *)
  let daemon =
    Pageout.create tb.Testbed.region ~order:(Policy.pageout_order pol) ()
  in
  Pageout.register daemon allocs.(0);
  Pageout.register daemon allocs.(1);
  let spec i cached volatile path policy =
    {
      Model.a_idx = i;
      a_cached = cached;
      a_volatile = volatile;
      a_path = path;
      a_policy = policy;
    }
  in
  (* The model's (rank, weight) tables are written out as literals — they
     restate, not reference, the policy's own class tables. *)
  let model =
    Model.create ~page_size:(Testbed.page_size tb) ~alpha:policy_alpha
      [|
        spec 0 true true [ a.Pd.id; b.Pd.id; c.Pd.id ] (Some (1, 3.0));
        spec 1 true false [ a.Pd.id; b.Pd.id ] (Some (0, 1.0));
        spec 2 false true [ a.Pd.id ] (Some (2, 8.0));
        spec 3 false false [ b.Pd.id; c.Pd.id ] None;
      |]
  in
  {
    m = tb.Testbed.m;
    region = tb.Testbed.region;
    kernel = tb.Testbed.kernel;
    doms = [| a; b; c |];
    allocs;
    conns;
    daemon;
    pol;
    managed;
    model;
    reals = Hashtbl.create 64;
    ps = Testbed.page_size tb;
    next_eph = 0;
    ephs = [];
    step = 0;
    exp_hit = Array.make (Array.length allocs) 0;
    exp_fresh = Array.make (Array.length allocs) 0;
    exp_reclaimed = Array.make (Array.length allocs) 0;
    exp_admitted = Array.make (Array.length allocs) 0;
    exp_dropped = Array.make (Array.length allocs) 0;
    exp_evicted = Array.make (Array.length allocs) 0;
    exp_thr = Array.make (Array.length allocs) None;
  }

(* -- small helpers ----------------------------------------------------- *)

let real st (mf : Model.fbuf) = Hashtbl.find st.reals mf.Model.key
let mfs st p = List.filter p (Model.all st.model)

(* Record in the model that this buffer's pages saw a teardown which may
   legally defer its TLB shootdowns. Called at every event that unmaps or
   invalidates translations (free, pageout, COW-invalidating send); the
   TLB audit then rejects any queued shootdown on a page outside this
   sanctioned set. *)
let sanction st (mf : Model.fbuf) =
  let fb = real st mf in
  for i = 0 to fb.Fbuf.npages - 1 do
    Model.window_open st.model ~vpn:(fb.Fbuf.base_vpn + i)
  done

let resolve l i =
  match l with [] -> None | _ -> Some (List.nth l (i mod List.length l))

let first_diff x y =
  let n = min (Bytes.length x) (Bytes.length y) in
  let rec go i =
    if i >= n then n else if Bytes.get x i <> Bytes.get y i then i else go (i + 1)
  in
  go 0

let phase_name = function
  | Model.Active -> "Active"
  | Model.Parked -> "Parked"
  | Model.Dead -> "Dead"

let state_name = function
  | Fbuf.Active -> "Active"
  | Fbuf.Cached_free -> "Cached_free"
  | Fbuf.Dead -> "Dead"

let free_frames st = Phys_mem.free_frames st.m.Machine.pmem

(* One daemon sweep, diffed against the model's own victim ordering. The
   daemon fixes its candidate order at sweep start (here, the dynamic
   policy's: over-threshold paths first) and reclaims in that order until
   pressure clears, so the reclaimed set must be exactly a prefix of the
   order the model computes from the same pre-sweep state — the daemon's
   TLB drain and scan charge free no frames, so the model's [free] sample
   taken before the call is the one the sweep ordered by. *)
let run_balance st =
  let free0 = free_frames st in
  let order = Model.balance_order st.model ~allocs:[ 0; 1 ] ~free:free0 in
  let n = Pageout.balance st.daemon in
  if n > List.length order then
    fail "balance: daemon reclaimed %d but the model has only %d candidates" n
      (List.length order);
  List.iteri
    (fun i mf ->
      let fb = real st mf in
      let resident =
        Vm_map.frame_of (Fbuf.originator fb).Pd.map ~vpn:fb.Fbuf.base_vpn
        <> None
      in
      if i < n then begin
        if resident then
          fail "balance: victim %d of %d (fbuf#%d) kept its frames" i n
            fb.Fbuf.id;
        st.exp_reclaimed.(mf.Model.alloc) <-
          st.exp_reclaimed.(mf.Model.alloc) + 1;
        sanction st mf;
        Model.apply_reclaim st.model mf
      end
      else if not resident then
        fail "balance: fbuf#%d lost residency outside the model's %d-victim \
              prefix"
          fb.Fbuf.id n)
    order

let ensure_frames st need =
  if free_frames st < need + 16 then run_balance st;
  free_frames st >= need

(* Whole-range read by [dom], checked against the model's view. Returns
   false when the read had to be skipped for lack of frames (originator
   touch of a paged-out buffer under extreme pressure). *)
let try_checked_read st (mf : Model.fbuf) (dom : Pd.t) =
  if
    dom.Pd.id = mf.Model.originator
    && (not mf.Model.resident)
    && not (ensure_frames st mf.Model.npages)
  then false
  else begin
    let view = Model.read_view mf ~dom:dom.Pd.id in
    let want = Model.expected_bytes st.model mf view in
    let fb = real st mf in
    let got = Access.read_bytes dom ~vaddr:(Fbuf.vaddr fb) ~len:(Fbuf.size fb) in
    if not (Bytes.equal got want) then
      fail "fbuf#%d read by %s diverges at byte %d (expected %s view)"
        fb.Fbuf.id dom.Pd.name (first_diff got want)
        (match view with Model.Content -> "content" | Model.Zeros -> "zeros");
    true
  end

(* -- policy decision differential -------------------------------------- *)

(* Re-derive one recorded admission decision from the model. The policy
   logs a decision as zero or more Evicts followed by exactly one Admit or
   Drop, each event snapshotting the free-frame level it was decided at;
   the model recomputes the requester's held pages and threshold and
   selects its own victim at every step, and the chained [free] snapshots
   must advance by exactly each victim's page count. [free0] is the level
   observed immediately before the real allocation call; [dropped] says
   whether that call raised [Policy.Dropped]. Model state (victim
   reclaims) is applied as the events are validated, so callers must
   verify before committing the allocation itself to the model. *)
let verify_policy st ~alloc:ai ~npages ~growth ~free0 ~dropped =
  let evs = Policy.drain_events st.pol in
  match st.managed.(ai) with
  | None ->
      if evs <> [] then
        fail "policy: unmanaged allocator %d produced %d decision events" ai
          (List.length evs);
      if dropped then fail "policy: unmanaged allocator %d saw a drop" ai
  | Some _ ->
      let my_path = (Allocator.path st.allocs.(ai)).Path.id in
      let alloc_path i = (Allocator.path st.allocs.(i)).Path.id in
      let check_free what got want =
        if got <> want then
          fail "policy: %s decided at %d free frames, expected %d" what got
            want
      in
      let requester_state free =
        ( Model.held st.model ~alloc:ai,
          Model.policy_threshold st.model ~alloc:ai ~free )
      in
      let rec go evs free_now =
        match evs with
        | [] ->
            fail "policy: decision on path %d ended without a verdict" my_path
        | [ Policy.Admit
              { path; npages = en; growth = eg; held; free; threshold } ] ->
            if dropped then
              fail "policy: Dropped surfaced but the final event is an Admit";
            check_free "admit" free free_now;
            if path <> my_path then
              fail "policy: admit recorded path %d, allocation was on %d" path
                my_path;
            if en <> npages || eg <> growth then
              fail
                "policy: admit recorded %d pages growth %d, allocation was \
                 %d pages growth %d"
                en eg npages growth;
            let mheld, mthr = requester_state free_now in
            if held <> mheld then
              fail
                "policy: admit on path %d recorded %d held pages, model \
                 holds %d"
                my_path held mheld;
            if threshold <> mthr then
              fail "policy: admit threshold %d, model computes %d" threshold
                mthr;
            if not (growth = 0 || mheld + growth <= mthr) then
              fail
                "policy: path %d admitted %d new pages at %d held over \
                 threshold %d (the admission check was skipped)"
                my_path growth mheld mthr;
            st.exp_admitted.(ai) <- st.exp_admitted.(ai) + 1;
            st.exp_thr.(ai) <- Some threshold
        | [ Policy.Drop { path; npages = en; held; free; threshold } ] ->
            if not dropped then
              fail
                "policy: a Drop was recorded but no Dropped exception \
                 surfaced";
            check_free "drop" free free_now;
            if path <> my_path then
              fail "policy: drop recorded path %d, allocation was on %d" path
                my_path;
            if en <> npages then
              fail "policy: drop recorded %d pages, allocation asked %d" en
                npages;
            let mheld, mthr = requester_state free_now in
            if held <> mheld then
              fail
                "policy: drop on path %d recorded %d held pages, model \
                 holds %d"
                my_path held mheld;
            if threshold <> mthr then
              fail "policy: drop threshold %d, model computes %d" threshold
                mthr;
            if growth = 0 || mheld + growth <= mthr then
              fail
                "policy: path %d dropped %d new pages at %d held under \
                 threshold %d"
                my_path growth mheld mthr;
            (match Model.next_victim st.model ~requester:ai ~free:free_now with
            | Some mf ->
                fail
                  "policy: path %d dropped while the model still finds \
                   victim fbuf#%d"
                  my_path mf.Model.real_id
            | None -> ());
            st.exp_dropped.(ai) <- st.exp_dropped.(ai) + 1;
            st.exp_thr.(ai) <- Some threshold
        | Policy.Evict { victim_path; fbuf = vid; npages = vn; free } :: rest
          ->
            check_free "evict" free free_now;
            let mheld, mthr = requester_state free_now in
            if growth = 0 || mheld + growth <= mthr then
              fail
                "policy: eviction on behalf of path %d while it is under \
                 threshold (%d held + %d <= %d)"
                my_path mheld growth mthr;
            (match Model.next_victim st.model ~requester:ai ~free:free_now with
            | None ->
                fail
                  "policy: evicted fbuf#%d but the model finds no eligible \
                   victim"
                  vid
            | Some mf ->
                if
                  mf.Model.real_id <> vid
                  || alloc_path mf.Model.alloc <> victim_path
                  || mf.Model.npages <> vn
                then
                  fail
                    "policy: evicted fbuf#%d (path %d, %d pages) but the \
                     model selects fbuf#%d (path %d, %d pages)"
                    vid victim_path vn mf.Model.real_id
                    (alloc_path mf.Model.alloc) mf.Model.npages;
                st.exp_reclaimed.(mf.Model.alloc) <-
                  st.exp_reclaimed.(mf.Model.alloc) + 1;
                st.exp_evicted.(mf.Model.alloc) <-
                  st.exp_evicted.(mf.Model.alloc) + 1;
                sanction st mf;
                Model.apply_reclaim st.model mf;
                go rest (free_now + vn))
        | (Policy.Admit _ | Policy.Drop _) :: _ :: _ ->
            fail "policy: a verdict event arrived before the decision's end"
      in
      go evs free0

(* -- per-step observable diff ------------------------------------------ *)

let diff_fbuf st (mf : Model.fbuf) =
  let fb = real st mf in
  (match (mf.Model.phase, fb.Fbuf.state) with
  | Model.Active, Fbuf.Active
  | Model.Parked, Fbuf.Cached_free
  | Model.Dead, Fbuf.Dead ->
      ()
  | p, s ->
      fail "fbuf#%d: model phase %s but real state %s" fb.Fbuf.id
        (phase_name p) (state_name s));
  if mf.Model.phase <> Model.Dead then begin
    if fb.Fbuf.secured <> mf.Model.secured then
      fail "fbuf#%d: secured flag %b, model says %b" fb.Fbuf.id fb.Fbuf.secured
        mf.Model.secured;
    Array.iter
      (fun (d : Pd.t) ->
        let rr = Fbuf.ref_count fb d and mr = Model.ref_count mf d.Pd.id in
        if rr <> mr then
          fail "fbuf#%d: %s holds %d refs, model says %d" fb.Fbuf.id d.Pd.name
            rr mr)
      st.doms;
    if mf.Model.phase = Model.Parked && Fbuf.total_refs fb <> 0 then
      fail "fbuf#%d: parked with %d refs" fb.Fbuf.id (Fbuf.total_refs fb);
    (* The protection invariant: the originator is writable exactly when
       the model says writing is allowed; receivers are never writable. *)
    let orig = Fbuf.originator fb in
    let vaddr = Fbuf.vaddr fb in
    let real_w = Access.can_access orig ~vaddr ~write:true in
    if real_w <> Model.may_write mf then
      fail "fbuf#%d: originator %s %s write but model %s it" fb.Fbuf.id
        orig.Pd.name
        (if real_w then "can" else "cannot")
        (if Model.may_write mf then "allows" else "forbids");
    Array.iter
      (fun (d : Pd.t) ->
        if d.Pd.id <> mf.Model.originator
           && Access.can_access d ~vaddr ~write:true
        then fail "fbuf#%d: receiver %s has write access" fb.Fbuf.id d.Pd.name)
      st.doms
  end

let diff_allocators st =
  Array.iteri
    (fun i ra ->
      let ma = Model.allocator st.model i in
      if Allocator.free_list_length ra <> Model.parked_len ma then
        fail "allocator %d: free list %d, model says %d" i
          (Allocator.free_list_length ra)
          (Model.parked_len ma);
      if Allocator.live_fbufs ra <> Model.live_count ma then
        fail "allocator %d: %d live, model says %d" i (Allocator.live_fbufs ra)
          (Model.live_count ma))
    st.allocs

let audit_target st =
  {
    Audit.region = st.region;
    domains = st.kernel :: Array.to_list st.doms;
    allocators =
      Array.to_list st.allocs
      @ List.filter_map Ipc.meta_allocator (Array.to_list st.conns);
  }

let run_audit st =
  match Audit.run (audit_target st) with
  | [] -> ()
  | v :: _ as all ->
      fail "audit: %d violation(s); first: %s" (List.length all) v

(* -- TLB discipline audit ---------------------------------------------- *)

(* IPC meta buffers (headers, serialized DAGs) are not modeled fbufs, but
   their deferred frees queue shootdowns too; sanction the meta
   allocator's whole owned address range around each call. *)
let sanction_meta st cn =
  match Ipc.meta_allocator cn with
  | None -> ()
  | Some a ->
      let cp = (Region.config st.region).Region.chunk_pages in
      List.iter
        (fun (base, nchunks) ->
          for vpn = base to base + (nchunks * cp) - 1 do
            Model.window_open st.model ~vpn
          done)
        (Allocator.owned_chunks a)

let domain_of_asid st asid =
  List.find_opt
    (fun (d : Pd.t) -> Pd.asid d = asid)
    ((st.kernel :: Array.to_list st.doms) @ st.ephs)

(* Runs after every step. Three invariants of the deferred-shootdown
   discipline, checked against the real TLB's introspection surface:

   - a live entry must agree with the pmap: if the translation is gone,
     a shootdown for it must be queued (the legal deferral window); and
     a writable entry over a read-only translation is a violation even
     when a shootdown is queued — protection downgrades must shoot down
     immediately, never defer (this is what catches
     [Pmap.chaos_defer_downgrade]);
   - a queued shootdown must be on a page the model saw torn down, and
     its translation must actually be gone (only removals may defer);
   - each domain's generation word must be where the model expects it
     (this world never flushes an ASID, so any movement is a stray
     flush). *)
let tlb_audit st =
  let tlb = st.m.Machine.tlb in
  Tlb.iter_live tlb (fun ~asid ~vpn ~writable ->
      match domain_of_asid st asid with
      | None ->
          (* ASID 0 is not a domain: the kernel IPC path's synthetic
             pressure entries (Machine.domain_crossing_tlb_pressure). *)
          if asid <> 0 then
            fail "tlb audit: live entry for unknown asid %d (vpn %#x)" asid vpn
      | Some d -> (
          match Pmap.lookup (Vm_map.pmap d.Pd.map) ~vpn with
          | Some e ->
              if writable && not e.Pmap.writable then
                fail
                  "tlb audit: %s vpn %#x: writable TLB entry over a \
                   read-only translation (a downgrade shootdown was \
                   deferred or elided)"
                  d.Pd.name vpn
          | None ->
              if not (Tlb.pending_covers tlb ~asid ~vpn) then
                fail
                  "tlb audit: %s vpn %#x: live TLB entry with no \
                   translation and no queued shootdown"
                  d.Pd.name vpn));
  Tlb.iter_pending tlb (fun ~asid ~vpn _p ->
      if not (Model.window_sanctions st.model ~vpn) then
        fail "tlb audit: queued shootdown on never-torn-down vpn %#x" vpn;
      match domain_of_asid st asid with
      | None -> fail "tlb audit: queued shootdown for unknown asid %d" asid
      | Some d ->
          if Pmap.lookup (Vm_map.pmap d.Pd.map) ~vpn <> None then
            fail
              "tlb audit: %s vpn %#x: shootdown deferred while the \
               translation is still installed (only removals may defer)"
              d.Pd.name vpn);
  List.iter
    (fun (d : Pd.t) ->
      let got = Tlb.generation tlb ~asid:(Pd.asid d) in
      let want = Model.expected_generation st.model ~dom:d.Pd.id in
      if got <> want then
        fail "tlb audit: %s generation %d, model expected %d" d.Pd.name got
          want)
    (st.kernel :: Array.to_list st.doms)

(* -- expected refusals -------------------------------------------------- *)

let refusal_matches r (e : exn) =
  match (r, e) with
  | Model.R_dead, Transfer.Dead_fbuf _ -> true
  | Model.R_invalid, Invalid_argument _ -> true
  | _ -> false

let refusal_name = function
  | Model.R_dead -> "Dead_fbuf"
  | Model.R_invalid -> "Invalid_argument"

(* Observability tap: when the flight recorder is armed, documented
   refusals and divergences arm/fire its post-mortem dump. *)
let refusal_hook : (string -> unit) option ref = ref None
let note_refusal what =
  match !refusal_hook with Some f -> f what | None -> ()

let expect_refusal what r f =
  match f () with
  | () -> fail "%s: expected %s, but it succeeded" what (refusal_name r)
  | exception e when refusal_matches r e -> note_refusal what
  | exception (Check_failed _ as e) ->
      note_refusal what;
      raise e
  | exception e ->
      fail "%s: expected %s, got %s" what (refusal_name r)
        (Printexc.to_string e)

(* -- operations --------------------------------------------------------- *)

let pattern st (mf : Model.fbuf) =
  let len = Model.size_bytes st.model mf in
  let k = (st.step * 131) + (mf.Model.key * 17) + 1 in
  Bytes.init len (fun i -> Char.chr ((k + i) land 0xff))

(* One fully checked allocation of [n] pages from allocator [ai]: the
   model predicts reuse-vs-fresh before the call, the policy decision is
   re-derived from its event log after it ([verify_policy] runs before the
   model commits, so the held/threshold snapshots are diffed against
   pre-allocation state), and a policy Drop counts as an executed step —
   the refusal, with its possible reclaim-before-drop evictions, is the
   behavior under test. *)
let checked_alloc st ~ai ~n =
  let ra = st.allocs.(ai) in
  match Model.predict_alloc st.model ~alloc:ai ~npages:n with
  | Some top -> (
      let growth = if top.Model.charged then 0 else n in
      let free0 = free_frames st in
      match Allocator.alloc ra ~npages:n with
      | fb ->
          verify_policy st ~alloc:ai ~npages:n ~growth ~free0 ~dropped:false;
          st.exp_hit.(ai) <- st.exp_hit.(ai) + 1;
          if fb.Fbuf.id <> top.Model.real_id then
            fail "alloc %d: cache reuse order: got fbuf#%d, model expected #%d"
              ai fb.Fbuf.id top.Model.real_id;
          Model.commit_hit st.model top ~now:fb.Fbuf.last_alloc_us;
          (* Reused contents must be exactly what was parked — or zeros
             after a pageout. A stale-mapping or stale-content bug surfaces
             here. *)
          ignore (try_checked_read st top (Fbuf.originator fb));
          true
      | exception Policy.Dropped _ ->
          verify_policy st ~alloc:ai ~npages:n ~growth ~free0 ~dropped:true;
          true)
  | None -> (
      if not (ensure_frames st n) then false
      else
        let free0 = free_frames st in
        match Allocator.alloc ra ~npages:n with
        | fb ->
            verify_policy st ~alloc:ai ~npages:n ~growth:n ~free0
              ~dropped:false;
            let orig = Fbuf.originator fb in
            (* Fresh frames are not cleared (the paper's Table 1 excludes
               zeroing); whatever is there now is the baseline content. *)
            let contents =
              Access.read_bytes orig ~vaddr:(Fbuf.vaddr fb)
                ~len:(Fbuf.size fb)
            in
            let mf =
              Model.commit_fresh st.model ~alloc:ai ~npages:n
                ~real_id:fb.Fbuf.id ~contents ~now:fb.Fbuf.last_alloc_us
            in
            st.exp_fresh.(ai) <- st.exp_fresh.(ai) + 1;
            Hashtbl.replace st.reals mf.Model.key fb;
            true
        | exception Policy.Dropped _ ->
            verify_policy st ~alloc:ai ~npages:n ~growth:n ~free0
              ~dropped:true;
            true
        | exception (Region.Chunk_limit_exceeded _ | Region.Region_exhausted)
          ->
            (* A legal refusal under quota pressure. The admission hook ran
               (and admitted) before the region refused, so its events
               still verify; the allocator counters must be untouched,
               which the post-step diff verifies. *)
            verify_policy st ~alloc:ai ~npages:n ~growth:n ~free0
              ~dropped:false;
            false)

let do_alloc st ~alloc ~npages =
  let ai = alloc mod Array.length st.allocs in
  let n = 1 + (npages mod 4) in
  checked_alloc st ~ai ~n

let do_ipc st ~conn ~fbuf ~len =
  let ci = conn mod Array.length st.conns in
  let cn = st.conns.(ci) in
  let s = Ipc.src cn and d = Ipc.dst cn in
  let cands =
    mfs st (fun f ->
        f.Model.phase = Model.Active
        && Model.ref_count f s.Pd.id > 0
        && ((not f.Model.cached) || List.mem d.Pd.id f.Model.path))
  in
  match resolve cands fbuf with
  | None -> false
  | Some mf ->
      if not (ensure_frames st (mf.Model.npages + 4)) then false
      else begin
        let fb = real st mf in
        let wlen = 1 + (len mod Fbuf.size fb) in
        let msg = Msg.of_fbuf fb ~off:0 ~len:wlen in
        (* Ipc.call transfers before the handler runs; model it first. *)
        (match Model.send_check mf ~src:s.Pd.id ~dst:d.Pd.id with
        | Ok () -> ()
        | Error _ -> fail "ipc: candidate unexpectedly unsendable");
        Model.apply_send mf ~dst:d.Pd.id;
        sanction st mf;
        let view = Model.read_view mf ~dom:d.Pd.id in
        let want_all = Model.expected_bytes st.model mf view in
        let want = Bytes.sub want_all 0 wlen in
        let received = ref None in
        Ipc.call cn msg ~handler:(fun rm ->
            received := Some rm;
            let got = Msg.to_bytes rm ~as_:d in
            if Bytes.length got <> wlen then
              fail "ipc: delivered %d bytes, sent %d" (Bytes.length got) wlen;
            if not (Bytes.equal got want) then
              fail "ipc: delivered bytes diverge at %d" (first_diff got want);
            (* Touch the whole range so the receiver's mapping state stays
               binary (see the Model comment on partial touches). *)
            let whole =
              Access.read_bytes d ~vaddr:(Fbuf.vaddr fb) ~len:(Fbuf.size fb)
            in
            if not (Bytes.equal whole want_all) then
              fail "ipc: receiver range read diverges at %d"
                (first_diff whole want_all));
        (match !received with
        | None -> fail "ipc: handler never ran"
        | Some rm -> Ipc.free_deferred cn rm);
        sanction_meta st cn;
        Ipc.flush_deallocs cn;
        Model.apply_free st.model mf ~dom:d.Pd.id;
        true
      end

let do_bad_dag st ~kind =
  let k = kind mod 5 in
  if not (ensure_frames st 2) then false
  else
    let a = st.doms.(0) and b = st.doms.(1) in
    let free0 = free_frames st in
    match Allocator.alloc st.allocs.(2) ~npages:1 with
    | exception (Region.Chunk_limit_exceeded _ | Region.Region_exhausted) ->
        verify_policy st ~alloc:2 ~npages:1 ~growth:1 ~free0 ~dropped:false;
        false
    | exception Policy.Dropped _ ->
        verify_policy st ~alloc:2 ~npages:1 ~growth:1 ~free0 ~dropped:true;
        false
    | fb -> (
        verify_policy st ~alloc:2 ~npages:1 ~growth:1 ~free0 ~dropped:false;
        let contents =
          Access.read_bytes a ~vaddr:(Fbuf.vaddr fb) ~len:(Fbuf.size fb)
        in
        let mf =
          Model.commit_fresh st.model ~alloc:2 ~npages:1 ~real_id:fb.Fbuf.id
            ~contents ~now:fb.Fbuf.last_alloc_us
        in
        st.exp_fresh.(2) <- st.exp_fresh.(2) + 1;
        Hashtbl.replace st.reals mf.Model.key fb;
        let base = Fbuf.vaddr fb in
        let node tag w1 w2 =
          let bts = Bytes.create Integrated.node_size in
          Bytes.set_int32_le bts 0 (Int32.of_int tag);
          Bytes.set_int32_le bts 4 (Int32.of_int w1);
          Bytes.set_int32_le bts 8 (Int32.of_int w2);
          Bytes.set_int32_le bts 12 0l;
          bts
        in
        let cfg = Region.config st.region in
        let region_end = (cfg.Region.base_vpn + cfg.Region.region_pages) * st.ps in
        let root =
          match k with
          | 0 -> (cfg.Region.base_vpn * st.ps) - st.ps (* fully outside *)
          | 1 -> region_end - 8 (* node record straddles the region end *)
          | 2 ->
              Access.write_bytes a ~vaddr:base (node 9 0 0);
              base (* garbage tag *)
          | 3 ->
              Access.write_bytes a ~vaddr:base (node 2 base base);
              base (* self-referential cat: a cycle *)
          | _ ->
              Access.write_bytes a ~vaddr:base (node 1 base 0x1000000);
              base (* leaf whose length overruns its fbuf *)
        in
        mf.Model.expected <-
          Access.read_bytes a ~vaddr:base ~len:(Fbuf.size fb);
        Transfer.send fb ~src:a ~dst:b;
        Model.apply_send mf ~dst:b.Pd.id;
        if k >= 2 then
          (* Deserialization reads the node page as the receiver. *)
          ignore (Model.read_view mf ~dom:b.Pd.id);
        let anomalies () =
          let s = st.m.Machine.stats in
          Stats.get s "integrated.bad_node"
          + Stats.get s "integrated.cycle"
          + Stats.get s "integrated.bad_data_ref"
          + Stats.get s "integrated.budget_exhausted"
        in
        let before = anomalies () in
        (match Integrated.deserialize st.region ~as_:b ~root_vaddr:root with
        | msg ->
            if not (Msg.is_empty msg) then
              fail "bad DAG (kind %d) produced data" k;
            if anomalies () <= before then
              fail "bad DAG (kind %d) not counted as an anomaly" k
        | exception e ->
            fail "bad DAG (kind %d) escaped as exception: %s" k
              (Printexc.to_string e));
        Transfer.free fb ~dom:b;
        Model.apply_free st.model mf ~dom:b.Pd.id;
        Transfer.free fb ~dom:a;
        sanction st mf;
        Model.apply_free st.model mf ~dom:a.Pd.id;
        true)

let exec st (op : Op.t) =
  match op with
  | Op.Alloc { alloc; npages } -> do_alloc st ~alloc ~npages
  | Op.Write { fbuf } -> (
      match resolve (mfs st Model.may_write) fbuf with
      | None -> false
      | Some mf ->
          if (not mf.Model.resident) && not (ensure_frames st mf.Model.npages)
          then false
          else begin
            let fb = real st mf in
            let data = pattern st mf in
            Access.write_bytes (Fbuf.originator fb) ~vaddr:(Fbuf.vaddr fb) data;
            mf.Model.expected <- data;
            mf.Model.resident <- true;
            true
          end)
  | Op.Read { fbuf; dom } -> (
      match resolve (mfs st (fun f -> f.Model.phase <> Model.Dead)) fbuf with
      | None -> false
      | Some mf -> (
          let readers =
            List.filter
              (fun (d : Pd.t) ->
                d.Pd.id = mf.Model.originator
                || Model.ref_count mf d.Pd.id > 0
                || List.mem d.Pd.id mf.Model.mapped_in)
              (Array.to_list st.doms)
          in
          match resolve readers dom with
          | None -> false
          | Some d -> try_checked_read st mf d))
  | Op.Send { fbuf; src; dst } -> (
      match resolve (Model.all st.model) fbuf with
      | None -> false
      | Some mf -> (
          let s = st.doms.(src mod Array.length st.doms) in
          let d = st.doms.(dst mod Array.length st.doms) in
          let fb = real st mf in
          match Model.send_check mf ~src:s.Pd.id ~dst:d.Pd.id with
          | Ok () ->
              Transfer.send fb ~src:s ~dst:d;
              Model.apply_send mf ~dst:d.Pd.id;
              (* A send may invalidate translations (COW, stale-mapping
                 clears), so its pages may defer shootdowns. *)
              sanction st mf;
              true
          | Error r ->
              expect_refusal "send" r (fun () -> Transfer.send fb ~src:s ~dst:d);
              true))
  | Op.Secure { fbuf } -> (
      match resolve (Model.all st.model) fbuf with
      | None -> false
      | Some mf -> (
          let fb = real st mf in
          match Model.secure_check mf with
          | Ok () ->
              Transfer.secure fb;
              Model.apply_secure mf;
              true
          | Error r ->
              expect_refusal "secure" r (fun () -> Transfer.secure fb);
              true))
  | Op.Free { fbuf; dom } -> (
      match resolve (Model.all st.model) fbuf with
      | None -> false
      | Some mf -> (
          let d = st.doms.(dom mod Array.length st.doms) in
          let fb = real st mf in
          match Model.free_check mf ~dom:d.Pd.id with
          | Ok () ->
              Transfer.free fb ~dom:d;
              sanction st mf;
              Model.apply_free st.model mf ~dom:d.Pd.id;
              true
          | Error r ->
              expect_refusal "free" r (fun () -> Transfer.free fb ~dom:d);
              true))
  | Op.Reclaim { alloc; max_fbufs } ->
      let ai = alloc mod Array.length st.allocs in
      let maxf = 1 + (max_fbufs mod 3) in
      let victims = Model.reclaim_victims st.model ~alloc:ai ~max_fbufs:maxf in
      let n = Allocator.reclaim st.allocs.(ai) ~max_fbufs:maxf () in
      if n <> List.length victims then
        fail "reclaim: %d buffers reclaimed, model predicted %d" n
          (List.length victims);
      List.iter
        (fun mf ->
          let fb = real st mf in
          if
            Vm_map.frame_of (Fbuf.originator fb).Pd.map ~vpn:fb.Fbuf.base_vpn
            <> None
          then fail "reclaim: victim fbuf#%d kept its frames" fb.Fbuf.id;
          st.exp_reclaimed.(mf.Model.alloc) <-
            st.exp_reclaimed.(mf.Model.alloc) + 1;
          sanction st mf;
          Model.apply_reclaim st.model mf)
        victims;
      true
  | Op.Balance ->
      run_balance st;
      true
  | Op.Ipc { conn; fbuf; len } -> do_ipc st ~conn ~fbuf ~len
  | Op.Read_unref { fbuf; dom } -> (
      match resolve (mfs st (fun f -> f.Model.phase <> Model.Dead)) fbuf with
      | None -> false
      | Some mf -> (
          let outsiders =
            List.filter
              (fun (d : Pd.t) ->
                d.Pd.id <> mf.Model.originator
                && Model.ref_count mf d.Pd.id = 0
                && not (List.mem d.Pd.id mf.Model.mapped_in))
              (Array.to_list st.doms)
          in
          match resolve outsiders dom with
          | None -> false
          | Some d -> (
              match Model.read_view mf ~dom:d.Pd.id with
              | Model.Content -> fail "read_unref: model grants content"
              | Model.Zeros ->
                  let fb = real st mf in
                  let got =
                    Access.read_bytes d ~vaddr:(Fbuf.vaddr fb)
                      ~len:(Fbuf.size fb)
                  in
                  if not (Bytes.equal got (Bytes.make (Fbuf.size fb) '\000'))
                  then
                    fail
                      "fbuf#%d: unauthorized read by %s leaked data at byte %d"
                      fb.Fbuf.id d.Pd.name
                      (first_diff got (Bytes.make (Fbuf.size fb) '\000'));
                  true)))
  | Op.Write_foreign { fbuf; dom } -> (
      match resolve (mfs st (fun f -> f.Model.phase <> Model.Dead)) fbuf with
      | None -> false
      | Some mf -> (
          let others =
            List.filter
              (fun (d : Pd.t) -> d.Pd.id <> mf.Model.originator)
              (Array.to_list st.doms)
          in
          match resolve others dom with
          | None -> false
          | Some d ->
              let fb = real st mf in
              (match
                 Access.write_bytes d ~vaddr:(Fbuf.vaddr fb)
                   (Bytes.make 4 'X')
               with
              | () ->
                  fail "fbuf#%d: foreign write by %s succeeded" fb.Fbuf.id
                    d.Pd.name
              | exception Vm_map.Protection_violation _ -> ());
              true))
  | Op.Use_after_free { fbuf; write } -> (
      let live_ranges =
        List.filter_map
          (fun f ->
            if f.Model.phase = Model.Dead then None
            else
              let fb = real st f in
              Some (fb.Fbuf.base_vpn, fb.Fbuf.npages))
          (Model.all st.model)
      in
      let cands =
        mfs st (fun f ->
            f.Model.phase = Model.Dead
            &&
            let fb = real st f in
            not
              (List.exists
                 (fun (b, n) ->
                   b < fb.Fbuf.base_vpn + fb.Fbuf.npages
                   && fb.Fbuf.base_vpn < b + n)
                 live_ranges))
      in
      match resolve cands fbuf with
      | None -> false
      | Some mf ->
          let fb = real st mf in
          let orig = Fbuf.originator fb in
          if write then (
            match
              Access.write_bytes orig ~vaddr:(Fbuf.vaddr fb) (Bytes.make 4 'X')
            with
            | () -> fail "fbuf#%d: use-after-free write succeeded" fb.Fbuf.id
            | exception Vm_map.Protection_violation _ -> ())
          else begin
            let got =
              Access.read_bytes orig ~vaddr:(Fbuf.vaddr fb) ~len:(Fbuf.size fb)
            in
            if not (Bytes.equal got (Bytes.make (Fbuf.size fb) '\000')) then
              fail "fbuf#%d: use-after-free read leaked stale bytes" fb.Fbuf.id
          end;
          true)
  | Op.Crash { fbuf } -> (
      let cands =
        mfs st (fun f ->
            f.Model.phase = Model.Active
            && (not f.Model.cached)
            && List.exists
                 (fun (d : Pd.t) -> Model.ref_count f d.Pd.id > 0)
                 (Array.to_list st.doms))
      in
      match resolve cands fbuf with
      | None -> false
      | Some mf ->
          let fb = real st mf in
          let holder =
            List.find
              (fun (d : Pd.t) -> Model.ref_count mf d.Pd.id > 0)
              (Array.to_list st.doms)
          in
          let eph = Pd.create st.m (Printf.sprintf "eph%d" st.next_eph) in
          st.next_eph <- st.next_eph + 1;
          st.ephs <- eph :: st.ephs;
          Region.register_domain st.region eph;
          Transfer.send fb ~src:holder ~dst:eph;
          Model.apply_send mf ~dst:eph.Pd.id;
          sanction st mf;
          Lifecycle.terminate_domain st.region eph ~allocators:[];
          Model.apply_free st.model mf ~dom:eph.Pd.id;
          if Lifecycle.orphaned_references st.region eph <> 0 then
            fail "crash: terminated domain still holds references";
          if eph.Pd.live then fail "crash: domain still marked live";
          true)
  | Op.Bad_dag { kind } -> do_bad_dag st ~kind
  | Op.Exhaust { alloc } -> (
      let ai = alloc mod Array.length st.allocs in
      let free0 = free_frames st in
      match Allocator.alloc st.allocs.(ai) ~npages:2048 with
      | _ -> fail "exhaust: oversized allocation was granted"
      | exception Policy.Dropped _ ->
          (* On a managed path the admission policy refuses first — after
             evicting every eligible lower-class victim, since a 2048-page
             request can never fit under a threshold; each eviction and
             the final Drop verdict are model-checked. *)
          verify_policy st ~alloc:ai ~npages:2048 ~growth:2048 ~free0
            ~dropped:true;
          true
      | exception Region.Chunk_limit_exceeded _ ->
          verify_policy st ~alloc:ai ~npages:2048 ~growth:2048 ~free0
            ~dropped:false;
          true
      | exception Region.Region_exhausted ->
          verify_policy st ~alloc:ai ~npages:2048 ~growth:2048 ~free0
            ~dropped:false;
          true)
  | Op.Tlb_stale { fbuf; write } -> (
      (* The deferral window, attacked head-on: load the buffer's
         translations into the TLB, free it (the uncached teardown defers
         every shootdown), and touch the old addresses in the same step —
         before any drain point. The stale entries are still live; they
         must not let the touch reach the freed frames. *)
      let cands =
        mfs st (fun f ->
            f.Model.phase = Model.Active
            && (not f.Model.cached)
            && f.Model.resident && Model.total_refs f = 1
            && Model.ref_count f f.Model.originator = 1)
      in
      match resolve cands fbuf with
      | None -> false
      | Some mf ->
          let fb = real st mf in
          let orig = Fbuf.originator fb in
          let asid = Pd.asid orig in
          ignore (try_checked_read st mf orig);
          Transfer.free fb ~dom:orig;
          sanction st mf;
          Model.apply_free st.model mf ~dom:orig.Pd.id;
          (* The read above cached every page, so the teardown must have
             queued (not skipped) a shootdown for each translation that is
             still in the TLB. *)
          for i = 0 to fb.Fbuf.npages - 1 do
            let vpn = fb.Fbuf.base_vpn + i in
            if
              Tlb.probe st.m.Machine.tlb ~asid ~vpn ~write:false <> Tlb.Miss
              && not (Tlb.pending_covers st.m.Machine.tlb ~asid ~vpn)
            then
              fail "tlb_stale: freed page %#x cached with no queued shootdown"
                vpn
          done;
          if write then (
            match
              Access.write_bytes orig ~vaddr:(Fbuf.vaddr fb) (Bytes.make 4 'X')
            with
            | () ->
                fail "fbuf#%d: write through a stale TLB entry succeeded"
                  fb.Fbuf.id
            | exception Vm_map.Protection_violation _ -> ())
          else begin
            let got =
              Access.read_bytes orig ~vaddr:(Fbuf.vaddr fb) ~len:(Fbuf.size fb)
            in
            if not (Bytes.equal got (Bytes.make (Fbuf.size fb) '\000')) then
              fail "fbuf#%d: stale TLB entry leaked freed bytes at %d"
                fb.Fbuf.id
                (first_diff got (Bytes.make (Fbuf.size fb) '\000'))
          end;
          true)
  | Op.Policy_relief { alloc } ->
      (* Clear contention everywhere — page out every parked buffer, so
         every path's held account falls to its Active pages while the
         free pool (and with it every threshold) grows — then allocate one
         page on a managed path. A starved path making progress once
         contention clears is exactly the model agreeing the verdict must
         now be Admit; a lingering refusal the model does not re-derive
         fails the replay. *)
      Array.iteri
        (fun i ra ->
          let victims =
            Model.reclaim_victims st.model ~alloc:i ~max_fbufs:nframes
          in
          let n = Allocator.reclaim ra ~max_fbufs:nframes () in
          if n <> List.length victims then
            fail "policy_relief: allocator %d reclaimed %d, model predicted %d"
              i n (List.length victims);
          List.iter
            (fun mf ->
              st.exp_reclaimed.(i) <- st.exp_reclaimed.(i) + 1;
              sanction st mf;
              Model.apply_reclaim st.model mf)
            victims)
        st.allocs;
      checked_alloc st ~ai:(alloc mod 3) ~n:1
  | Op.Drop_probe { alloc; npages } ->
      (* An oversized request on a low-class path: the likeliest way to
         draw a Drop verdict under ordinary pressure. Whatever the verdict,
         it is event-verified by [checked_alloc]; when it was a drop, the
         full structural audit runs immediately — a refused allocation
         must leave no trace in refcounts, free lists, or extents. *)
      let ai = alloc mod 2 in
      let n = 5 + (npages mod 4) in
      let drops0 = st.exp_dropped.(ai) in
      let ran = checked_alloc st ~ai ~n in
      if st.exp_dropped.(ai) > drops0 then run_audit st;
      ran

(* -- metrics differential ----------------------------------------------- *)

(* When the replay runs metered (an instance installed through
   [Machine.default_metrics]), the registry is one more observable to
   diff: allocation fast/slow-path counters against the model's own
   predictions, the free-list and liveness gauges against the model
   allocators, reclaim counts, and the ledger against the machine's busy
   time. The ledger accumulates charges per machine in arrival order with
   plain addition — exactly how [Machine.charge] grows [busy_us] — so on
   this single-machine world the two floats must be bitwise equal, not
   merely close. *)
let verify_metrics st =
  match Machine.metrics st.m with
  | None -> ()
  | Some mx ->
      let module Mx = Fbufs_metrics.Metrics in
      let module Ledger = Fbufs_metrics.Ledger in
      let mach = st.m.Machine.name in
      let count name labels =
        match Mx.value_by_name mx ~name ~labels with
        | None -> 0
        | Some v -> int_of_float v
      in
      Array.iteri
        (fun i ra ->
          let path = string_of_int (Allocator.path ra).Path.id in
          let check what got want =
            if got <> want then
              fail "metrics: allocator %d: %s is %d, model expected %d" i what
                got want
          in
          check "fbufs_alloc_total{result=hit}"
            (count "fbufs_alloc_total" [ mach; path; "hit" ])
            st.exp_hit.(i);
          check "fbufs_alloc_total{result=fresh}"
            (count "fbufs_alloc_total" [ mach; path; "fresh" ])
            st.exp_fresh.(i);
          check "fbufs_reclaimed_fbufs_total"
            (count "fbufs_reclaimed_fbufs_total" [ mach; path ])
            st.exp_reclaimed.(i);
          let ma = Model.allocator st.model i in
          check "fbufs_free_list_depth"
            (count "fbufs_free_list_depth" [ mach; path ])
            (Model.parked_len ma);
          check "fbufs_live_fbufs"
            (count "fbufs_live_fbufs" [ mach; path ])
            (Model.live_count ma))
        st.allocs;
      (* Policy decision counters against the event-derived expectations,
         and the held/threshold gauges against the model's own account. *)
      Array.iteri
        (fun i k ->
          match k with
          | None -> ()
          | Some klass ->
              let path = string_of_int (Allocator.path st.allocs.(i)).Path.id in
              let check what got want =
                if got <> want then
                  fail "metrics: allocator %d: %s is %d, expected %d" i what
                    got want
              in
              let l3 = [ mach; path; Policy.klass_label klass ] in
              check "fbufs_policy_admitted_total"
                (count "fbufs_policy_admitted_total" l3)
                st.exp_admitted.(i);
              check "fbufs_policy_dropped_total"
                (count "fbufs_policy_dropped_total" l3)
                st.exp_dropped.(i);
              check "fbufs_policy_evictions_total"
                (count "fbufs_policy_evictions_total" l3)
                st.exp_evicted.(i);
              check "fbufs_policy_held_pages"
                (count "fbufs_policy_held_pages" [ mach; path ])
                (Model.held st.model ~alloc:i);
              match st.exp_thr.(i) with
              | None -> ()
              | Some thr ->
                  check "fbufs_policy_threshold_pages"
                    (count "fbufs_policy_threshold_pages" [ mach; path ])
                    thr)
        st.managed;
      let charged = Ledger.charged_us (Mx.ledger mx) ~machine:mach in
      let busy = Machine.busy_us st.m in
      if charged <> busy then
        fail "metrics: ledger charged %.17g us but machine busy %.17g us"
          charged busy

(* -- span differential -------------------------------------------------- *)

let op_label (op : Op.t) =
  match op with
  | Op.Alloc _ -> "alloc"
  | Op.Write _ -> "write"
  | Op.Read _ -> "read"
  | Op.Send _ -> "send"
  | Op.Secure _ -> "secure"
  | Op.Free _ -> "free"
  | Op.Reclaim _ -> "reclaim"
  | Op.Balance -> "balance"
  | Op.Ipc _ -> "ipc"
  | Op.Read_unref _ -> "read_unref"
  | Op.Write_foreign _ -> "write_foreign"
  | Op.Use_after_free _ -> "use_after_free"
  | Op.Crash _ -> "crash"
  | Op.Bad_dag _ -> "bad_dag"
  | Op.Exhaust _ -> "exhaust"
  | Op.Tlb_stale _ -> "tlb_stale"
  | Op.Policy_relief _ -> "policy_relief"
  | Op.Drop_probe _ -> "drop_probe"

(* Every replay records spans (one transfer per executed op), so the span
   sink's own invariants run under the checker's adversarial streams:
   every span finished, one causal root per transfer, child intervals
   inside their parents, and per-component span charges summing exactly
   to each transfer's ledger cells. On top of the sink's internal check,
   diff its arrival total against the machine's busy time: each charge
   was rounded to integer nanoseconds once, so the two can differ by at
   most half a nanosecond per charge (plus one for the final float
   comparison). *)
let verify_spans st =
  match Machine.spans st.m with
  | None -> ()
  | Some sink ->
      let module Span = Fbufs_span.Span in
      (match Span.check sink with
      | [] -> ()
      | v :: _ as all ->
          fail "spans: %d violation(s); first: %s" (List.length all) v);
      let mach = st.m.Machine.name in
      let charged = float_of_int (Span.charged_ns sink ~machine:mach) in
      let busy_ns = Machine.busy_us st.m *. 1000.0 in
      let bound =
        (float_of_int (Span.charge_count sink ~machine:mach) /. 2.0) +. 1.0
      in
      if Float.abs (charged -. busy_ns) > bound then
        fail
          "spans: %.1f ns charged to the sink but machine busy %.1f ns \
           (rounding bound %.1f)"
          charged busy_ns bound

(* -- the replay loop ---------------------------------------------------- *)

let replay ~seed ops =
  let st = make_state ~seed in
  let total = List.length ops in
  let executed = ref 0 and skipped = ref 0 in
  let failure = ref None in
  (try
     List.iteri
       (fun i op ->
         st.step <- i;
         let ran =
           try Machine.with_transfer st.m (op_label op) (fun () -> exec st op)
           with
           | Check_failed _ as e -> raise e
           | e -> fail "unexpected exception: %s" (Printexc.to_string e)
         in
         if ran then incr executed else incr skipped;
         diff_allocators st;
         List.iter (diff_fbuf st) (Model.all st.model);
         tlb_audit st;
         if i mod audit_every = audit_every - 1 then run_audit st)
       ops;
     run_audit st;
     verify_metrics st;
     verify_spans st
   with Check_failed msg ->
     failure := Some (st.step, List.nth ops st.step, msg));
  { total; executed = !executed; skipped = !skipped; failure = !failure }

let gen_ops ~seed ~n ~adversary =
  (* The op stream is forked off the seed so it is independent of every
     other consumer of randomness (the machine's TLB draws in particular):
     replaying a shrunk subsequence regenerates nothing. *)
  let rng = Rng.fork (Rng.create seed) 1 in
  Op.gen_list rng ~adversary ~n

let run ~seed ~ops ~adversary =
  let l = gen_ops ~seed ~n:ops ~adversary in
  (replay ~seed l, l)

let failed r = r.failure <> None

let pp_report ppf r =
  match r.failure with
  | None ->
      Fmt.pf ppf "ok: %d ops (%d executed, %d skipped)" r.total r.executed
        r.skipped
  | Some (step, op, msg) ->
      Fmt.pf ppf "FAIL at step %d on %a:@ %s" step Op.pp op msg
