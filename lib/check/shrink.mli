(** Counterexample shrinking (truncate to the failing step, then ddmin).

    Sound because {!Op} indices resolve modulo the candidate lists: any
    subsequence of a failing sequence is executable. A shrunk sequence is
    kept as long as it fails {e somehow} — a different divergence is
    still a minimal reproducer. *)

val minimize : seed:int -> Op.t list -> Op.t list * Driver.report
(** The minimal failing subsequence and its replay report. If the input
    does not fail, it is returned unchanged with its passing report. *)
