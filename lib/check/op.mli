(** The differential checker's operation vocabulary.

    An operation names its targets with raw non-negative integers that the
    driver resolves modulo the candidate list existing at execution time
    (skipping the op when the list is empty). Indices therefore never
    dangle, which makes {e any} subsequence of a failing sequence
    replayable — the property the shrinker's delta debugging relies on. *)

type t =
  | Alloc of { alloc : int; npages : int }
      (** Allocate from an allocator; sizes resolve to 1–4 pages. *)
  | Write of { fbuf : int }  (** Originator writes the whole buffer. *)
  | Read of { fbuf : int; dom : int }
      (** A domain with (possibly indirect) access reads the buffer. *)
  | Send of { fbuf : int; src : int; dst : int }
      (** Transfer with copy semantics; also exercises the documented
          refusals (no reference, src = dst, off-path cached send). *)
  | Secure of { fbuf : int }  (** Receiver-raise of protection. *)
  | Free of { fbuf : int; dom : int }
  | Reclaim of { alloc : int; max_fbufs : int }
      (** Direct pageout of parked buffers from one allocator. *)
  | Balance  (** One pageout-daemon sweep. *)
  | Ipc of { conn : int; fbuf : int; len : int }
      (** Full call: send (Rebuild or Integrated), handler read,
          deferred-free, flush. *)
  | Read_unref of { fbuf : int; dom : int }
      (** Adversary: a domain without rights reads — must see zeros. *)
  | Write_foreign of { fbuf : int; dom : int }
      (** Adversary: a non-originator writes — must fault. *)
  | Use_after_free of { fbuf : int; write : bool }
      (** Adversary: touch a dead buffer's (unrecycled) addresses. *)
  | Crash of { fbuf : int }
      (** Adversary: a fresh domain receives a buffer and terminates
          abruptly mid-path; the kernel sweep must reclaim its refs. *)
  | Bad_dag of { kind : int }
      (** Adversary: deserialize a malformed integrated DAG (out-of-region
          root, region-boundary node, garbage tag, cycle, bad data ref). *)
  | Exhaust of { alloc : int }
      (** Adversary: an allocation far beyond both the chunk quota and any
          sharing-policy threshold must be refused — by the admission
          policy ([Dropped], possibly after reclaim-before-drop evictions)
          on managed paths, by the region's quota otherwise. *)
  | Tlb_stale of { fbuf : int; write : bool }
      (** Adversary: free an active uncached buffer (its unmap defers the
          TLB shootdowns) and touch its old addresses in the very same
          step, before any barrier can drain the queue — the stale
          translation must still fault. *)
  | Policy_relief of { alloc : int }
      (** Adversary: page out every parked buffer everywhere (contention
          clears, thresholds grow back), then allocate one page on a
          managed path — a starved path must make progress exactly when
          the model's own admission arithmetic says it must. *)
  | Drop_probe of { alloc : int; npages : int }
      (** Adversary: an oversized (5–8 page) request on a low-class path,
          the likeliest way to draw a Drop verdict; a drop is followed
          immediately by the full structural audit, which must find the
          refused allocation left no trace. *)

val pp : Format.formatter -> t -> unit
(** Prints valid OCaml constructor syntax. *)

val pp_list : Format.formatter -> t list -> unit
(** Prints a replayable [Op.t list] literal. *)

val gen : Fbufs_sim.Rng.t -> adversary:bool -> t
(** One weighted-random operation; [adversary] enables the fault-injection
    vocabulary on top of the normal mix. *)

val gen_list : Fbufs_sim.Rng.t -> adversary:bool -> n:int -> t list
