open Fbufs_sim
open Fbufs_vm
open Fbufs

(* Structural invariant auditor.

   Unlike the differential driver, which compares against a parallel
   model, the audit is self-contained: it cross-checks the real
   allocators, region and per-domain page tables against each other, so
   it can run over any live system (the driver runs it after operations;
   tests run it over hand-built scenarios). Every check here is listed in
   DESIGN.md section 7; keep the two in sync. *)

type target = {
  region : Region.t;
  domains : Pd.t list;  (* every domain that may map fbuf pages *)
  allocators : Allocator.t list;  (* every allocator over [region] *)
}

let run t =
  let bad = ref [] in
  let violation fmt = Fmt.kstr (fun s -> bad := s :: !bad) fmt in
  let dead = Region.dead_frame_id t.region in
  let registered = Region.registered_fbufs t.region in

  (* 1. Free-list discipline: parked buffers are Cached_free with zero
     references, counted free lists match, and no buffer is parked twice
     (within or across allocators). *)
  let parked_seen = Hashtbl.create 64 in
  List.iteri
    (fun ai alloc ->
      let parked = Allocator.parked alloc in
      if List.length parked <> Allocator.free_list_length alloc then
        violation "allocator %d: free_list_length %d but %d parked buffers"
          ai
          (Allocator.free_list_length alloc)
          (List.length parked);
      List.iter
        (fun (fb : Fbuf.t) ->
          if fb.Fbuf.state <> Fbuf.Cached_free then
            violation "allocator %d: parked fbuf#%d not Cached_free" ai
              fb.Fbuf.id;
          if Fbuf.total_refs fb <> 0 then
            violation "allocator %d: parked fbuf#%d holds %d references" ai
              fb.Fbuf.id (Fbuf.total_refs fb);
          if Hashtbl.mem parked_seen fb.Fbuf.id then
            violation "fbuf#%d parked twice" fb.Fbuf.id
          else Hashtbl.add parked_seen fb.Fbuf.id ai;
          if not (List.exists (fun (g : Fbuf.t) -> g.Fbuf.id = fb.Fbuf.id)
                    registered)
          then violation "parked fbuf#%d not registered in the region"
                 fb.Fbuf.id)
        parked)
    t.allocators;

  (* 2. No two registered fbufs overlap in the region's address space. *)
  let by_base =
    List.sort
      (fun (x : Fbuf.t) (y : Fbuf.t) -> compare x.Fbuf.base_vpn y.Fbuf.base_vpn)
      registered
  in
  let rec overlap_scan = function
    | (x : Fbuf.t) :: (y : Fbuf.t) :: rest ->
        if x.Fbuf.base_vpn + x.Fbuf.npages > y.Fbuf.base_vpn then
          violation "fbuf#%d and fbuf#%d overlap" x.Fbuf.id y.Fbuf.id;
        overlap_scan (y :: rest)
    | _ -> ()
  in
  overlap_scan by_base;
  List.iter
    (fun (fb : Fbuf.t) ->
      if
        not
          (Region.in_region t.region ~vpn:fb.Fbuf.base_vpn
          && Region.in_region t.region
               ~vpn:(fb.Fbuf.base_vpn + fb.Fbuf.npages - 1))
      then violation "fbuf#%d extends outside the region" fb.Fbuf.id)
    registered;

  (* 3. Free extents: sorted, coalesced, inside chunks the allocator owns,
     and disjoint from every registered fbuf. *)
  List.iteri
    (fun ai alloc ->
      let owner = Allocator.owner alloc in
      let exts = Allocator.free_extents alloc in
      let rec ext_scan = function
        | (b1, n1) :: ((b2, _) :: _ as rest) ->
            if b1 + n1 >= b2 then
              violation
                "allocator %d: extents (%d,%d) and (%d,_) unsorted or \
                 uncoalesced"
                ai b1 n1 b2;
            ext_scan rest
        | _ -> ()
      in
      ext_scan exts;
      List.iter
        (fun (base, n) ->
          if n <= 0 then violation "allocator %d: empty extent at %d" ai base;
          if
            not
              (Region.in_region t.region ~vpn:base
              && Region.in_region t.region ~vpn:(base + n - 1))
          then violation "allocator %d: extent (%d,%d) outside region" ai base n
          else
            for chunk = Region.chunk_index t.region ~vpn:base
                to Region.chunk_index t.region ~vpn:(base + n - 1) do
              if Region.chunk_owner_id t.region ~chunk <> Some owner.Pd.id then
                violation
                  "allocator %d: extent (%d,%d) in chunk %d not owned by %s" ai
                  base n chunk owner.Pd.name
            done;
          List.iter
            (fun (fb : Fbuf.t) ->
              if
                base < fb.Fbuf.base_vpn + fb.Fbuf.npages
                && fb.Fbuf.base_vpn < base + n
              then
                violation "allocator %d: extent (%d,%d) overlaps fbuf#%d" ai
                  base n fb.Fbuf.id)
            registered)
        exts;
      (* Owned chunk grants really belong to the owner. *)
      List.iter
        (fun (base, nchunks) ->
          let c0 = Region.chunk_index t.region ~vpn:base in
          for chunk = c0 to c0 + nchunks - 1 do
            if Region.chunk_owner_id t.region ~chunk <> Some owner.Pd.id then
              violation "allocator %d: chunk %d granted but not owned" ai chunk
          done)
        (Allocator.owned_chunks alloc))
    t.allocators;

  (* 4. Region chunk accounting is self-consistent. *)
  let free_scan = ref 0 in
  for chunk = 0 to Region.nchunks t.region - 1 do
    if Region.chunk_owner_id t.region ~chunk = None then incr free_scan
  done;
  if !free_scan <> Region.free_chunk_count t.region then
    violation "region: free_chunk_count %d but %d chunks unowned"
      (Region.free_chunk_count t.region)
      !free_scan;

  (* 5. Page tables: at a registered fbuf's pages, a non-originator domain
     may map only the originator's frame or the dead page, and is never
     writable; the originator's protection agrees with the secured flag;
     frame reference counts equal the number of mappings. *)
  let m = Region.machine t.region in
  List.iter
    (fun (fb : Fbuf.t) ->
      let orig = Fbuf.originator fb in
      (if fb.Fbuf.state = Fbuf.Active || fb.Fbuf.state = Fbuf.Cached_free then
         let want_writable =
           orig.Pd.kernel
           || (not fb.Fbuf.secured)
           || fb.Fbuf.state = Fbuf.Cached_free
         in
         for i = 0 to fb.Fbuf.npages - 1 do
           let vpn = fb.Fbuf.base_vpn + i in
           if not (Vm_map.mapped orig.Pd.map ~vpn) then
             violation "fbuf#%d page %d: originator mapping lost" fb.Fbuf.id i;
           (match Vm_map.prot_of orig.Pd.map ~vpn with
           | Some p when Prot.can_write p <> want_writable ->
               violation
                 "fbuf#%d page %d: originator %swritable but secured=%b"
                 fb.Fbuf.id i
                 (if Prot.can_write p then "" else "not ")
                 fb.Fbuf.secured
           | _ -> ());
           let orig_frame = Vm_map.frame_of orig.Pd.map ~vpn in
           let mappers = ref 0 in
           List.iter
             (fun (d : Pd.t) ->
               let f = Vm_map.frame_of d.Pd.map ~vpn in
               (* Non-originator rules. *)
               if not (Pd.equal d orig) then begin
                 (match f with
                 | None -> ()
                 | Some f when f = dead -> ()
                 | Some f when orig_frame = Some f -> ()
                 | Some f ->
                     violation
                       "fbuf#%d page %d: %s maps foreign frame %d" fb.Fbuf.id i
                       d.Pd.name f);
                 match Vm_map.prot_of d.Pd.map ~vpn with
                 | Some p when Prot.can_write p ->
                     violation "fbuf#%d page %d: receiver %s is writable"
                       fb.Fbuf.id i d.Pd.name
                 | _ -> ()
               end;
               match (f, orig_frame) with
               | Some f, Some g when f = g -> incr mappers
               | _ -> ())
             t.domains;
           match orig_frame with
           | Some f when f <> dead ->
               let rc = Phys_mem.refcount m.Machine.pmem f in
               if rc <> !mappers then
                 violation
                   "fbuf#%d page %d: frame %d refcount %d but %d mappings"
                   fb.Fbuf.id i f rc !mappers
           | _ -> ()
         done);
      (* 6. mapped_in is a duplicate-free receiver list. *)
      let rec dup_scan = function
        | (d : Pd.t) :: rest ->
            if List.exists (Pd.equal d) rest then
              violation "fbuf#%d: %s appears twice in mapped_in" fb.Fbuf.id
                d.Pd.name;
            dup_scan rest
        | [] -> ()
      in
      dup_scan fb.Fbuf.mapped_in;
      if List.exists (Pd.equal orig) fb.Fbuf.mapped_in then
        violation "fbuf#%d: originator listed in mapped_in" fb.Fbuf.id)
    registered;
  List.rev !bad
