(* Counterexample shrinking: truncation + ddmin.

   Because ops address candidates by index-modulo (see Op), every
   subsequence of a failing sequence is executable, so we can delete
   operations freely and simply ask the driver whether the remainder
   still fails — any failure counts, not just an identical message,
   since a shrunk sequence exposing a *different* divergence is still a
   minimal reproducer of a real bug. *)

let fails ~seed ops = Driver.failed (Driver.replay ~seed ops)

let take n l = List.filteri (fun i _ -> i < n) l
let drop_slice l ~at ~len =
  List.filteri (fun i _ -> i < at || i >= at + len) l

(* Classic delta debugging: try removing chunks of size n/2, n/4, ... 1,
   restarting from the current (smaller) sequence after each successful
   removal. *)
let ddmin ~seed ops =
  let ops = ref ops in
  let chunk = ref (max 1 (List.length !ops / 2)) in
  while !chunk >= 1 do
    let progressed = ref true in
    while !progressed do
      progressed := false;
      let n = List.length !ops in
      let at = ref 0 in
      while !at < List.length !ops do
        let cand = drop_slice !ops ~at:!at ~len:!chunk in
        if List.length cand < List.length !ops && fails ~seed cand then begin
          ops := cand;
          progressed := true
          (* keep [at]: the next slice slid into place *)
        end
        else at := !at + !chunk
      done;
      if List.length !ops >= n then progressed := false
    done;
    if !chunk = 1 then chunk := 0 else chunk := !chunk / 2
  done;
  !ops

let minimize ~seed ops =
  match Driver.replay ~seed ops with
  | { Driver.failure = None; _ } as r -> (ops, r)
  | { Driver.failure = Some (step, _, _); _ } ->
      (* Truncating to the failing step is the big first win: everything
         after it is dead weight by construction. *)
      let ops = take (step + 1) ops in
      let ops = ddmin ~seed ops in
      (ops, Driver.replay ~seed ops)
