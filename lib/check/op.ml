open Fbufs_sim

(* The checker's operation vocabulary.

   Every index field ([fbuf], [dom], [alloc], ...) is a raw non-negative
   integer that the driver resolves modulo the relevant candidate list at
   execution time. This indirection is what makes shrinking sound: any
   subsequence of a generated sequence is itself executable (an index never
   dangles, it just resolves to a different candidate or to a skip when the
   candidate list is empty), so delta debugging can delete operations
   freely and replay the remainder. *)

type t =
  | Alloc of { alloc : int; npages : int }
  | Write of { fbuf : int }
  | Read of { fbuf : int; dom : int }
  | Send of { fbuf : int; src : int; dst : int }
  | Secure of { fbuf : int }
  | Free of { fbuf : int; dom : int }
  | Reclaim of { alloc : int; max_fbufs : int }
  | Balance
  | Ipc of { conn : int; fbuf : int; len : int }
  | Read_unref of { fbuf : int; dom : int }
  | Write_foreign of { fbuf : int; dom : int }
  | Use_after_free of { fbuf : int; write : bool }
  | Crash of { fbuf : int }
  | Bad_dag of { kind : int }
  | Exhaust of { alloc : int }
  | Tlb_stale of { fbuf : int; write : bool }
  | Policy_relief of { alloc : int }
  | Drop_probe of { alloc : int; npages : int }

(* Printed as valid OCaml so a failing sequence can be pasted back into a
   test as a [Fbufs_check.Op.t list] literal. *)
let pp ppf op =
  match op with
  | Alloc { alloc; npages } ->
      Fmt.pf ppf "Alloc { alloc = %d; npages = %d }" alloc npages
  | Write { fbuf } -> Fmt.pf ppf "Write { fbuf = %d }" fbuf
  | Read { fbuf; dom } -> Fmt.pf ppf "Read { fbuf = %d; dom = %d }" fbuf dom
  | Send { fbuf; src; dst } ->
      Fmt.pf ppf "Send { fbuf = %d; src = %d; dst = %d }" fbuf src dst
  | Secure { fbuf } -> Fmt.pf ppf "Secure { fbuf = %d }" fbuf
  | Free { fbuf; dom } -> Fmt.pf ppf "Free { fbuf = %d; dom = %d }" fbuf dom
  | Reclaim { alloc; max_fbufs } ->
      Fmt.pf ppf "Reclaim { alloc = %d; max_fbufs = %d }" alloc max_fbufs
  | Balance -> Fmt.pf ppf "Balance"
  | Ipc { conn; fbuf; len } ->
      Fmt.pf ppf "Ipc { conn = %d; fbuf = %d; len = %d }" conn fbuf len
  | Read_unref { fbuf; dom } ->
      Fmt.pf ppf "Read_unref { fbuf = %d; dom = %d }" fbuf dom
  | Write_foreign { fbuf; dom } ->
      Fmt.pf ppf "Write_foreign { fbuf = %d; dom = %d }" fbuf dom
  | Use_after_free { fbuf; write } ->
      Fmt.pf ppf "Use_after_free { fbuf = %d; write = %b }" fbuf write
  | Crash { fbuf } -> Fmt.pf ppf "Crash { fbuf = %d }" fbuf
  | Bad_dag { kind } -> Fmt.pf ppf "Bad_dag { kind = %d }" kind
  | Exhaust { alloc } -> Fmt.pf ppf "Exhaust { alloc = %d }" alloc
  | Tlb_stale { fbuf; write } ->
      Fmt.pf ppf "Tlb_stale { fbuf = %d; write = %b }" fbuf write
  | Policy_relief { alloc } -> Fmt.pf ppf "Policy_relief { alloc = %d }" alloc
  | Drop_probe { alloc; npages } ->
      Fmt.pf ppf "Drop_probe { alloc = %d; npages = %d }" alloc npages

let pp_list ppf ops =
  Fmt.pf ppf "@[<v 2>[@,%a@]@,]"
    (Fmt.list ~sep:(Fmt.any ";@,") pp)
    ops

let gen rng ~adversary =
  let r n = Rng.int rng n in
  let idx () = r 1_000_000 in
  let normal pick =
    if pick < 18 then Alloc { alloc = idx (); npages = idx () }
    else if pick < 32 then Write { fbuf = idx () }
    else if pick < 46 then Read { fbuf = idx (); dom = idx () }
    else if pick < 60 then Send { fbuf = idx (); src = idx (); dst = idx () }
    else if pick < 66 then Secure { fbuf = idx () }
    else if pick < 84 then Free { fbuf = idx (); dom = idx () }
    else if pick < 88 then Reclaim { alloc = idx (); max_fbufs = idx () }
    else if pick < 91 then Balance
    else Ipc { conn = idx (); fbuf = idx (); len = idx () }
  in
  if not adversary then normal (r 100)
  else
    let pick = r 142 in
    if pick < 100 then normal pick
    else if pick < 107 then Read_unref { fbuf = idx (); dom = idx () }
    else if pick < 114 then Write_foreign { fbuf = idx (); dom = idx () }
    else if pick < 120 then Use_after_free { fbuf = idx (); write = r 2 = 1 }
    else if pick < 124 then Crash { fbuf = idx () }
    else if pick < 128 then Bad_dag { kind = idx () }
    else if pick < 130 then Exhaust { alloc = idx () }
    else if pick < 134 then Tlb_stale { fbuf = idx (); write = r 2 = 1 }
    else if pick < 137 then Policy_relief { alloc = idx () }
    else Drop_probe { alloc = idx (); npages = idx () }

let gen_list rng ~adversary ~n =
  List.init n (fun _ -> gen rng ~adversary)
