(** Structural invariant auditor.

    Self-contained cross-check of the real allocators, region and
    per-domain page tables — no reference model involved, so it can sweep
    any live system. The invariants enforced are documented in DESIGN.md
    section 7 ("Checked invariants"); keep the two lists in sync. *)

type target = {
  region : Fbufs.Region.t;
  domains : Fbufs_vm.Pd.t list;
      (** every domain that may map fbuf pages (include the kernel) *)
  allocators : Fbufs.Allocator.t list;
      (** every allocator over [region], including IPC meta allocators *)
}

val run : target -> string list
(** All invariant violations found, oldest first; [[]] means clean. *)
