(** Pure reference model of fbuf semantics.

    An executable restatement of the paper's transfer rules — immutability
    after transfer, copy semantics by sharing, lazy protection raise,
    cached reuse, dead-page reads for invalid references, pageout of
    parked buffers — with no dependency on the real stack. The driver
    applies every operation to both and diffs observable state; the model
    also predicts which refusals ([Dead_fbuf], [Invalid_argument],
    protection violations) the real stack must raise. *)

type phase = Active | Parked | Dead

type fbuf = {
  key : int;  (** stable driver handle *)
  alloc : int;
  npages : int;
  cached : bool;
  volatile : bool;
  originator : int;  (** Pd ids throughout *)
  path : int list;
  mutable real_id : int;
  mutable phase : phase;
  mutable secured : bool;
  mutable refs : (int * int) list;
  mutable mapped_in : int list;  (** granted receivers *)
  mutable materialized : int list;
      (** receivers holding live-frame mappings from a touch while the
          originator's frames were resident *)
  mutable stale_zero : int list;
      (** domains whose touch resolved to the dead page; they read zeros
          until those mappings are cleared *)
  mutable expected : bytes;
  mutable resident : bool;
  mutable charged : bool;
      (** mirror of [Fbuf.accounted]: the buffer's pages count toward its
          path's held account. Set on (re)allocation, cleared on parking
          without frames, pageout, and death — never by the page faults
          that can restore [resident] behind the allocator's back *)
  mutable last_alloc_us : float;
}

type alloc_spec = {
  a_idx : int;
  a_cached : bool;
  a_volatile : bool;
  a_path : int list;  (** Pd ids, originator first *)
  a_policy : (int * float) option;
      (** buffer-sharing [(rank, weight)] when the path is policy-managed:
          rank is the reclaim priority (lower is evicted first), weight
          scales the dynamic threshold — restated here independently of
          [Fbufs_policy]'s own tables *)
}

type allocator

type t

val create : page_size:int -> ?alpha:float -> alloc_spec array -> t
(** [alpha] is the buffer-sharing threshold scale (the policy mirror's
    allowance is [weight * alpha * free] pages); irrelevant (default [0.])
    when no spec carries [a_policy]. *)

val all : t -> fbuf list
(** Every buffer ever allocated (including dead ones), creation order. *)

val allocator : t -> int -> allocator
val size_bytes : t -> fbuf -> int
val ref_count : fbuf -> int -> int
val total_refs : fbuf -> int
val holders : fbuf -> int list

val parked_of : allocator -> fbuf list
val parked_len : allocator -> int
val live_count : allocator -> int

val predict_alloc : t -> alloc:int -> npages:int -> fbuf option
(** [Some fb]: the real allocator must reuse exactly this parked buffer;
    [None]: it must take the fresh path. *)

val commit_hit : t -> fbuf -> now:float -> unit
(** Confirm that the real allocator reused the predicted parked buffer.
    Raises [Invalid_argument] if [fb] is not the buffer {!predict_alloc}
    returned (a divergence in free-list order). *)

val commit_fresh :
  t -> alloc:int -> npages:int -> real_id:int -> contents:bytes ->
  now:float -> fbuf

val may_write : fbuf -> bool
(** Whether the originator's write must succeed (vs. fault). *)

type view = Content | Zeros

val read_view : fbuf -> dom:int -> view
(** What a whole-range read by [dom] must return; also applies the
    mapping-state transition the touch causes (materialization or a
    dead-page mapping). *)

val expected_bytes : t -> fbuf -> view -> bytes

type refusal = R_dead | R_invalid

val send_check : fbuf -> src:int -> dst:int -> (unit, refusal) result
val apply_send : fbuf -> dst:int -> unit
val secure_check : fbuf -> (unit, refusal) result
val apply_secure : fbuf -> unit
val free_check : fbuf -> dom:int -> (unit, refusal) result
val apply_free : t -> fbuf -> dom:int -> unit

val reclaim_victims : t -> alloc:int -> max_fbufs:int -> fbuf list
(** The exact buffers [Allocator.reclaim] must page out, LRU order. *)

val apply_reclaim : t -> fbuf -> unit

(** {2 Buffer-sharing policy mirror}

    The model's restatement of [Fbufs_policy]: the held-page account is
    recomputed from per-buffer state (Active fbufs plus parked
    still-charged ones) where the subject maintains a single integer
    event-wise through allocator hooks, and the threshold/victim
    arithmetic is written out again here — the driver diffs every
    admission decision the real policy records against these functions. *)

val held : t -> alloc:int -> int
(** Pages the path currently holds: its Active fbufs plus its parked
    fbufs still carrying their charge ([charged]). *)

val policy_threshold : t -> alloc:int -> free:int -> int
(** The path's held-page allowance at the given free-frame level;
    [max_int] for unmanaged paths. *)

val over_threshold : t -> alloc:int -> free:int -> bool

val next_victim : t -> requester:int -> free:int -> fbuf option
(** The buffer a reclaim-before-drop eviction on behalf of [requester]
    must target: the coldest parked still-resident buffer of a
    strictly-lower-rank path over its own threshold at [free] — lowest
    rank, then LRU, then fbuf id. [None] when the allocation must drop. *)

val balance_order : t -> allocs:int list -> free:int -> fbuf list
(** The order a policy-driven pageout sweep over the daemon's registered
    allocators must reclaim in (over-threshold paths first at the
    sweep-start [free], then rank, LRU, id); the daemon's reclaimed set
    must be a prefix of this list. *)

(** {2 TLB discipline mirror}

    The model's view of the deferred-shootdown rules: which pages are
    {e allowed} to have a queued shootdown (a sanctioned-teardown
    superset — TLB residency itself is random in the subject and not
    predictable), and what generation each address space must be at
    (the replay world never flushes an ASID, so a moved generation is a
    divergence). *)

val window_open : t -> vpn:int -> unit
(** Record that [vpn] saw a teardown that may defer its shootdown. *)

val window_sanctions : t -> vpn:int -> bool
(** Whether a queued shootdown on [vpn] is sanctioned. *)

val expected_generation : t -> dom:int -> int
val note_asid_flush : t -> dom:int -> unit
