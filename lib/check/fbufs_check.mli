(** Fbufs_check: reference-model differential checking of the fbuf stack.

    A randomized operation sequence is executed simultaneously against a
    pure {!Model} of the paper's semantics and the real
    allocator/VM/transfer/IPC stack; any divergence in observable state —
    contents, protection, reference counts, free lists, cache reuse
    order, documented refusals — is a failure, which {!Shrink} reduces to
    a minimal replayable sequence. {!Audit} independently cross-checks
    the real structures against each other and can sweep any live
    system. *)

module Op = Op
module Model = Model
module Audit = Audit
module Driver = Driver
module Shrink = Shrink

val audit : Audit.target -> string list
(** Run the structural invariant sweep; [[]] means clean. The invariants
    are documented in DESIGN.md section 7. *)

type outcome = {
  seed : int;
  adversary : bool;
  report : Driver.report;
  shrunk : Op.t list option;
      (** minimal reproducer, present exactly when the run failed *)
}

val run_seed : seed:int -> ops:int -> adversary:bool -> outcome
(** Generate, replay, and (on failure) shrink one seeded run. *)

val pp_outcome : Format.formatter -> outcome -> unit
