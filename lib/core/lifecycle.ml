open Fbufs_sim
open Fbufs_vm

let orphaned_references region dom =
  List.fold_left
    (fun acc fb -> acc + Fbuf.ref_count fb dom)
    0
    (Region.registered_fbufs region)

let terminate_domain region (dom : Pd.t) ~allocators =
  List.iter
    (fun a ->
      if not (Pd.equal (Allocator.owner a) dom) then
        invalid_arg
          "Lifecycle.terminate_domain: allocator owned by another domain")
    allocators;
  let m = Region.machine region in
  Machine.charge ~comp:Fbufs_metrics.Component.Unmap m
    m.Machine.cost.Cost_model.vm_range_op;
  dom.Pd.live <- false;
  (* Relinquish the references the dead domain held on others' buffers;
     freeing an active buffer's last reference parks or tears it down
     exactly as a proper free would. *)
  List.iter
    (fun (fb : Fbuf.t) ->
      if fb.Fbuf.state = Fbuf.Active then
        for _ = 1 to Fbuf.ref_count fb dom do
          Stats.incr m.Machine.stats "lifecycle.orphan_ref_released";
          Transfer.free fb ~dom
        done)
    (Region.registered_fbufs region);
  (* Destroy the domain's own communication endpoints. *)
  List.iter Allocator.teardown allocators
