open Fbufs_sim
open Fbufs_vm
module Mx = Fbufs_metrics.Metrics

exception Dead_fbuf of string

let sends_total =
  Mx.counter ~name:"fbufs_sends_total"
    ~help:"Cross-domain fbuf transfers (Transfer.send)"
    ~labels:[ "machine"; "path" ] ()

let secured_total =
  Mx.counter ~name:"fbufs_secured_total"
    ~help:"Write-permission revocations enforcing fbuf immutability"
    ~labels:[ "machine" ] ()

let check_active (fb : Fbuf.t) op =
  match fb.Fbuf.state with
  | Fbuf.Active -> ()
  | Fbuf.Cached_free | Fbuf.Dead ->
      raise (Dead_fbuf (Printf.sprintf "%s: fbuf#%d is not active" op fb.id))

let stats (fb : Fbuf.t) = fb.Fbuf.m.Machine.stats

let trace_fbuf_event (fb : Fbuf.t) ?(extra = []) ~domain kind =
  let m = fb.Fbuf.m in
  if Machine.tracing m then
    Machine.trace_instant m ~domain ~path_id:fb.Fbuf.path.Path.id
      ~args:(("fbuf", Fbufs_trace.Trace.Int fb.Fbuf.id) :: extra)
      kind

let chaos_skip_protect = ref false

(* Revoke the originator's write permission (immutability enforcement). *)
let protect_originator (fb : Fbuf.t) =
  let orig = Fbuf.originator fb in
  trace_fbuf_event fb ~domain:orig.Pd.name "fbuf.secure";
  if orig.Pd.kernel then
    (* Trusted originator: enforcement is a no-op. *)
    Stats.incr (stats fb) "fbuf.secure_noop"
  else if !chaos_skip_protect then
    (* Fault injection: claim the buffer is secured without actually
       revoking write permission — the bug class Fbufs_check exists to
       catch. Bookkeeping below proceeds so the divergence is purely
       between recorded and enforced protection state. *)
    Stats.incr (stats fb) "fbuf.secured"
  else begin
    Vm_map.protect orig.Pd.map ~vpn:fb.base_vpn ~npages:fb.npages
      ~prot:Prot.Read_only;
    Stats.incr (stats fb) "fbuf.secured"
  end;
  (match Machine.metrics fb.Fbuf.m with
  | None -> ()
  | Some mx ->
      Mx.incr mx secured_total ~labels:[ fb.Fbuf.m.Machine.name ] ());
  fb.Fbuf.secured <- true

let secure fb =
  check_active fb "Transfer.secure";
  (* Securing is a protection barrier: any deferred shootdowns must land
     before the immutability promise can be relied on. *)
  Tlb_sync.drain fb.Fbuf.m;
  if not fb.Fbuf.secured then protect_originator fb;
  Machine.seq_point fb.Fbuf.m "transfer.secure"

let is_secured (fb : Fbuf.t) = fb.Fbuf.secured

(* Grant the receiver the *right* to map the fbuf; the mappings themselves
   are established lazily, on first touch, by the region's fault hook. A
   receiver that never examines the data (the paper's netserver case) never
   pays any per-page VM cost. The only eager work is clearing stale
   mappings left from an earlier life of these addresses (e.g. a dead page
   faulted in by a speculative read). *)
let grant (fb : Fbuf.t) (dst : Pd.t) =
  let orig = Fbuf.originator fb in
  for i = 0 to fb.npages - 1 do
    let vpn = fb.base_vpn + i in
    match Vm_map.frame_of dst.Pd.map ~vpn with
    | Some f when Vm_map.frame_of orig.Pd.map ~vpn <> Some f ->
        Vm_map.unmap dst.Pd.map ~vpn ~npages:1 ~free_frames:true
    | Some _ | None -> ()
  done;
  fb.Fbuf.mapped_in <- dst :: fb.Fbuf.mapped_in

let send (fb : Fbuf.t) ~src ~dst =
  check_active fb "Transfer.send";
  if Fbuf.ref_count fb src = 0 then
    invalid_arg
      (Printf.sprintf "Transfer.send: %s holds no reference to fbuf#%d"
         src.Pd.name fb.id);
  if Pd.equal src dst then invalid_arg "Transfer.send: src = dst";
  if fb.variant.cached && not (Path.mem fb.path dst) then
    invalid_arg
      (Printf.sprintf "Transfer.send: %s is not on %s's path" dst.Pd.name
         (Fbuf.variant_name fb.variant));
  (* Eager immutability enforcement for non-volatile fbufs. *)
  if (not fb.variant.volatile) && not fb.Fbuf.secured then
    protect_originator fb;
  if not (Fbuf.is_mapped_in fb dst) then grant fb dst;
  Fbuf.add_ref fb dst;
  Stats.incr (stats fb) "fbuf.send";
  (match Machine.metrics fb.Fbuf.m with
  | None -> ()
  | Some mx ->
      Mx.incr mx sends_total
        ~labels:
          [ fb.Fbuf.m.Machine.name; string_of_int fb.Fbuf.path.Path.id ]
        ());
  if Machine.tracing fb.Fbuf.m then
    trace_fbuf_event fb ~domain:src.Pd.name
      ~extra:[ ("dst", Fbufs_trace.Trace.Str dst.Pd.name) ]
      "fbuf.send"

(* Full teardown of an uncached (or evicted) fbuf. *)
let teardown (fb : Fbuf.t) =
  let orig = Fbuf.originator fb in
  List.iter
    (fun (d : Pd.t) ->
      Vm_map.unmap d.Pd.map ~vpn:fb.base_vpn ~npages:fb.npages
        ~free_frames:true)
    fb.Fbuf.mapped_in;
  fb.Fbuf.mapped_in <- [];
  Vm_map.unmap orig.Pd.map ~vpn:fb.base_vpn ~npages:fb.npages
    ~free_frames:true;
  fb.Fbuf.state <- Fbuf.Dead

let unmap_receiver (fb : Fbuf.t) (dom : Pd.t) =
  if List.exists (Pd.equal dom) fb.Fbuf.mapped_in then begin
    Vm_map.unmap dom.Pd.map ~vpn:fb.base_vpn ~npages:fb.npages
      ~free_frames:true;
    fb.Fbuf.mapped_in <-
      List.filter (fun d -> not (Pd.equal d dom)) fb.Fbuf.mapped_in
  end

let restore_originator_write (fb : Fbuf.t) =
  let orig = Fbuf.originator fb in
  if fb.Fbuf.secured then begin
    if not orig.Pd.kernel then
      Vm_map.protect orig.Pd.map ~vpn:fb.base_vpn ~npages:fb.npages
        ~prot:Prot.Read_write;
    fb.Fbuf.secured <- false
  end

let free (fb : Fbuf.t) ~dom =
  check_active fb "Transfer.free";
  Fbuf.drop_ref fb dom;
  trace_fbuf_event fb ~domain:dom.Pd.name "fbuf.free";
  let orig = Fbuf.originator fb in
  (* An uncached receiver that is done with the buffer has no further use
     for its mapping; cached receivers keep theirs (that is the cache).
     "Done" means the last reference: a receiver holding several (e.g. two
     overlapping sends) keeps its mapping until the final free — dropping
     it early would let a later read lazily re-fault the mapping without
     re-entering [mapped_in], and teardown would then leak it onto the
     next life of these addresses. *)
  if
    (not fb.variant.cached)
    && (not (Pd.equal dom orig))
    && Fbuf.ref_count fb dom = 0
  then unmap_receiver fb dom;
  if Fbuf.total_refs fb = 0 then begin
    if fb.variant.cached then begin
      (* Return write permission to the originator and park the buffer on
         its path's free list, mappings intact. *)
      restore_originator_write fb;
      fb.Fbuf.state <- Fbuf.Cached_free
    end
    else teardown fb;
    Stats.incr (stats fb) "fbuf.last_free";
    Machine.async_end fb.Fbuf.m ~domain:dom.Pd.name
      ~path_id:fb.Fbuf.path.Path.id ~id:fb.Fbuf.id "fbuf.life";
    match fb.Fbuf.on_all_freed with Some f -> f fb | None -> ()
  end

let destroy_cached (fb : Fbuf.t) =
  (match fb.Fbuf.state with
  | Fbuf.Cached_free -> ()
  | Fbuf.Active | Fbuf.Dead ->
      invalid_arg "Transfer.destroy_cached: fbuf not on a free list");
  fb.Fbuf.state <- Fbuf.Active;
  (* teardown expects an active buffer; transition through it. *)
  teardown fb

let reclaim_memory (fb : Fbuf.t) =
  (match fb.Fbuf.state with
  | Fbuf.Cached_free -> ()
  | Fbuf.Active | Fbuf.Dead ->
      invalid_arg "Transfer.reclaim_memory: fbuf not on a free list");
  let orig = Fbuf.originator fb in
  List.iter
    (fun (d : Pd.t) ->
      Vm_map.unmap d.Pd.map ~vpn:fb.base_vpn ~npages:fb.npages
        ~free_frames:true)
    fb.Fbuf.mapped_in;
  fb.Fbuf.mapped_in <- [];
  Vm_map.convert_zero_fill orig.Pd.map ~vpn:fb.base_vpn ~npages:fb.npages;
  Stats.incr (stats fb) "fbuf.reclaimed";
  trace_fbuf_event fb ~domain:orig.Pd.name "fbuf.reclaimed"
