(** The fbuf region: a globally shared virtual address range.

    A single range of virtual addresses is reserved in every protection
    domain, including the kernel. The kernel hands out ownership of fixed
    size *chunks* of the region to per-domain allocators (the upper level of
    the two-level allocation scheme), bounding each allocator's share so a
    malicious or leaky domain cannot exhaust the region.

    The region also implements the paper's defence for integrated buffer
    management over volatile fbufs: a read from a domain to a region address
    for which it has no mapping is resolved by mapping a zeroed "dead" page
    read-only at that address, so invalid DAG references appear as the
    absence of data instead of a crash. *)

type config = {
  base_vpn : int;  (** first virtual page of the region *)
  region_pages : int;  (** total size in pages *)
  chunk_pages : int;  (** chunk granularity handed to allocators *)
  max_chunks_per_allocator : int;  (** anti-hoarding limit *)
  zero_on_alloc : bool;
      (** clear frames on (re)allocation of uncached fbufs; the paper's
          Table 1 excludes this 57 us/page cost, so experiments matching the
          table disable it and the security ablation re-enables it *)
}

val default_config : config
(** base 0x40000 (1 GB), 8192 pages (32 MB), 16-page (64 KB) chunks,
    64 chunks per allocator, zeroing off (Table 1 comparability). *)

type t

exception Chunk_limit_exceeded of string
exception Region_exhausted

val create : Fbufs_sim.Machine.t -> kernel:Fbufs_vm.Pd.t -> ?config:config -> unit -> t
(** Raises [Invalid_argument] unless [region_pages] is a multiple of
    [chunk_pages]. *)

val machine : t -> Fbufs_sim.Machine.t
val kernel : t -> Fbufs_vm.Pd.t
val config : t -> config

val register_domain : t -> Fbufs_vm.Pd.t -> unit
(** Reserve the region range in the domain and install the dead-page fault
    hook. Must be called for every domain that will touch fbufs. *)

val in_region : t -> vpn:int -> bool

val alloc_chunks : t -> Fbufs_vm.Pd.t -> nchunks:int -> int
(** Hand ownership of [nchunks] *contiguous* chunks to a domain; returns the
    base VPN. Charges kernel VM work, plus an IPC round trip when the
    requester is not the kernel (this is the rare slow path of the two-level
    scheme). Raises {!Chunk_limit_exceeded}, {!Region_exhausted}, or
    [Invalid_argument] when [nchunks] is not positive. *)

val free_chunks : t -> Fbufs_vm.Pd.t -> vpn:int -> nchunks:int -> unit
(** Return chunk ownership (e.g. on path teardown). Raises
    [Invalid_argument] if the range falls outside the region or a chunk in
    it is not owned by [dom]. *)

val chunks_owned : t -> Fbufs_vm.Pd.t -> int

val register_fbuf : t -> Fbuf.t -> unit
(** Index the fbuf by its pages, for integrated-transfer lookup. *)

val unregister_fbuf : t -> Fbuf.t -> unit

val fbuf_at : t -> vpn:int -> Fbuf.t option
(** The live fbuf covering a region page, if any. *)

val registered_fbufs : t -> Fbuf.t list
(** Every fbuf currently registered in the region (deduplicated), for
    kernel sweeps such as domain termination. *)

val dead_page_reads : t -> int
(** How many invalid reads were resolved to the dead page (diagnostics). *)

(** {2 Introspection}

    Read-only views consumed by the [Fbufs_check] invariant auditor. *)

val nchunks : t -> int
(** Total chunks in the region. *)

val free_chunk_count : t -> int
(** Chunks not currently owned by any allocator. *)

val chunk_index : t -> vpn:int -> int
(** The chunk covering a region page (no bounds check; compose with
    {!in_region}). *)

val chunk_owner_id : t -> chunk:int -> int option
(** Owning domain id of a chunk, [None] if free. Raises
    [Invalid_argument] outside the region. *)

val dead_frame_id : t -> Fbufs_sim.Phys_mem.frame_id
(** The shared zeroed frame backing invalid reads. *)
