open Fbufs_vm

type variant = { cached : bool; volatile : bool }

let cached_volatile = { cached = true; volatile = true }
let volatile_only = { cached = false; volatile = true }
let cached_only = { cached = true; volatile = false }
let plain = { cached = false; volatile = false }

let variant_name v =
  match (v.cached, v.volatile) with
  | true, true -> "cached/volatile"
  | false, true -> "volatile"
  | true, false -> "cached"
  | false, false -> "plain"

type state = Active | Cached_free | Dead

type t = {
  id : int;
  base_vpn : int;
  npages : int;
  variant : variant;
  path : Path.t;
  m : Fbufs_sim.Machine.t;
  mutable state : state;
  mutable secured : bool;
  refs : (int, int) Hashtbl.t;
  mutable mapped_in : Pd.t list;
  mutable on_all_freed : (t -> unit) option;
  mutable last_alloc_us : float;
  mutable xfer : int;  (* causal transfer carrying this fbuf; 0 = none *)
  mutable accounted : bool;
      (* pages charged to the path's held-page account (buffer-sharing);
         set at allocation, cleared when the buffer parks without frames,
         is paged out, or dies — see Allocator *)
}

let make ~m ~id ~base_vpn ~npages ~variant ~path =
  {
    id;
    base_vpn;
    npages;
    variant;
    path;
    m;
    state = Active;
    secured = false;
    refs = Hashtbl.create 4;
    mapped_in = [];
    on_all_freed = None;
    last_alloc_us = 0.0;
    xfer = 0;
    accounted = false;
  }

let originator t = Path.originator t.path
let vaddr t = t.base_vpn * t.m.Fbufs_sim.Machine.cost.Fbufs_sim.Cost_model.page_size
let size t = t.npages * t.m.Fbufs_sim.Machine.cost.Fbufs_sim.Cost_model.page_size

let ref_count t (d : Pd.t) =
  match Hashtbl.find_opt t.refs d.Pd.id with Some n -> n | None -> 0

let total_refs t = Hashtbl.fold (fun _ n acc -> acc + n) t.refs 0

let refcount_ops =
  Fbufs_metrics.Metrics.counter ~name:"fbufs_refcount_ops_total"
    ~help:"Fbuf reference-count churn (grants and releases)"
    ~labels:[ "machine"; "op" ] ()

let note_ref t op =
  let m = t.m in
  match Fbufs_sim.Machine.metrics m with
  | None -> ()
  | Some mx ->
      Fbufs_metrics.Metrics.incr mx refcount_ops
        ~labels:[ m.Fbufs_sim.Machine.name; op ] ()

let add_ref t (d : Pd.t) =
  Hashtbl.replace t.refs d.Pd.id (ref_count t d + 1);
  note_ref t "add"

let drop_ref t (d : Pd.t) =
  let n = ref_count t d in
  if n <= 0 then
    invalid_arg
      (Printf.sprintf "Fbuf.drop_ref: %s holds no reference to fbuf#%d"
         d.Pd.name t.id);
  if n = 1 then Hashtbl.remove t.refs d.Pd.id
  else Hashtbl.replace t.refs d.Pd.id (n - 1);
  note_ref t "drop"

let is_mapped_in t (d : Pd.t) =
  Pd.equal d (originator t) || List.exists (Pd.equal d) t.mapped_in

let pp ppf t =
  Format.fprintf ppf "fbuf#%d[%s,%dp@%#x,%s]" t.id
    (variant_name t.variant) t.npages (vaddr t)
    (match t.state with
    | Active -> "active"
    | Cached_free -> "cached-free"
    | Dead -> "dead")
