(** The pageout daemon's view of fbufs.

    "Since fbufs are pageable, the amount of physical memory allocated to
    fbufs depends on the level of I/O traffic compared to other system
    activity" — under memory pressure the kernel reclaims the physical
    memory of fbufs sitting on free lists, discarding their contents
    (free buffers are never written to backing store). The LIFO free-list
    discipline means reclamation naturally takes the coldest buffers.

    Allocators register with the daemon; {!balance} reclaims parked
    buffers in a deterministic victim order — global LRU across every
    registered allocator by default, or whatever a buffer-sharing policy's
    [order] hook decides — until the free-frame pool reaches the low-water
    mark (or nothing reclaimable remains). *)

type t

type victim = Allocator.t * Fbuf.t
(** One reclaimable candidate: a parked, still-resident buffer paired
    with the allocator it is parked on. *)

val lru_order : victim list -> victim list
(** The default victim order: globally least-recently-allocated first
    across all registered allocators, ties broken on fbuf id. Total and
    deterministic — independent of registration order and free-list
    iteration order. *)

val create :
  Region.t ->
  ?low_water_frames:int ->
  ?order:(victim list -> victim list) ->
  unit ->
  t
(** [low_water_frames] defaults to 1/16 of physical memory. [order]
    (default {!lru_order}) ranks the reclaim candidates at the start of
    each {!balance} sweep, best victim first; a dynamic buffer-sharing
    policy installs its own ordering here (see
    [Fbufs_policy.Policy.pageout_order]). *)

val register : t -> Allocator.t -> unit
(** Make an allocator's free list visible to the daemon. *)

val registered : t -> int

val candidates : t -> victim list
(** Every reclaimable (parked, still-resident) buffer of every registered
    allocator, in registration-dependent order — {!balance} passes this
    list through the daemon's [order] before sweeping. Read-only. *)

val balance : t -> int
(** Reclaim parked fbufs in the daemon's victim order until free frames
    >= low water (the reclaimed set is a prefix of the ordered candidate
    list fixed at sweep start); returns the number of fbufs reclaimed.
    Charges the daemon's scan work plus the per-page reclamation costs. *)

val pressure : t -> bool
(** True when free frames are below the low-water mark. *)
