(** Cross-domain fbuf transfer semantics.

    Implements the paper's section 3 operations over the simulated VM:

    - {!send}: logically copy an fbuf into a receiver domain. Because the
      fbuf region is mapped at the same virtual address everywhere, no
      receiver-side address allocation happens; for cached fbufs whose
      receiver mapping already exists, a send is free of VM work. For
      non-volatile fbufs the first send eagerly revokes the originator's
      write permission (immutability enforcement); volatile fbufs skip this
      and rely on {!secure}.
    - {!secure}: a receiver's explicit request to raise protection on a
      volatile fbuf before interpreting its contents; a no-op when the
      originator is the trusted kernel.
    - {!free}: drop a domain's reference. When the last reference goes,
      cached fbufs return write permission to the originator and are handed
      back to their allocator with all mappings intact; uncached fbufs are
      fully torn down (mappings removed, frames freed).

    All VM cost accounting is emergent from the {!Fbufs_vm} calls made. *)

exception Dead_fbuf of string

val send : Fbuf.t -> src:Fbufs_vm.Pd.t -> dst:Fbufs_vm.Pd.t -> unit
(** Transfer with copy semantics. [src] must hold a reference; [dst] gains
    one. For cached fbufs [dst] must belong to the fbuf's path. Raises
    [Invalid_argument] when [src] holds no reference, [src] = [dst], or a
    cached fbuf is sent off its path. *)

val secure : Fbuf.t -> unit
(** Ensure the originator can no longer modify the fbuf. Idempotent. *)

val is_secured : Fbuf.t -> bool

val free : Fbuf.t -> dom:Fbufs_vm.Pd.t -> unit
(** Release [dom]'s reference. The last release triggers caching or
    teardown as described above. *)

val destroy_cached : Fbuf.t -> unit
(** Fully tear down a [Cached_free] fbuf: remove every mapping, free the
    frames. Used by allocator teardown and by memory-pressure eviction.
    Raises [Invalid_argument] if the fbuf is not on a free list. *)

val reclaim_memory : Fbuf.t -> unit
(** Pageout daemon interface: discard the physical memory of a
    [Cached_free] fbuf (contents are dropped, not paged out — they are free
    buffers). The originator's pages become lazily zero-filled; receiver
    mappings are removed and will be re-established on the next send.
    Raises [Invalid_argument] if the fbuf is not on a free list. *)

val chaos_skip_protect : bool ref
(** Test-only fault injection: when set, {!secure} and the eager
    enforcement inside {!send} mark the fbuf secured {e without} actually
    raising VM protection — the exact divergence the {!Fbufs_check}
    differential checker exists to detect. Must stay [false] outside the
    checker's self-test. *)
