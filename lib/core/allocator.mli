(** Per-domain, per-path fbuf allocators: the lower level of the two-level
    allocation scheme.

    Each communication endpoint owns one allocator, bound to the I/O data
    path its traffic follows and to an fbuf variant. The allocator satisfies
    requests from, in order: (1) its LIFO free list of cached fbufs of the
    right size — the common case, requiring no VM work and no page clearing;
    (2) virtual address extents it already owns; (3) fresh chunks requested
    from the kernel's {!Region} (the rare, IPC-charged slow path).

    The LIFO discipline keeps the warmest buffers (those most likely to
    still have physical memory and live TLB entries) at the head. *)

type t

type policy = Lifo | Fifo

val create :
  Region.t -> path:Path.t -> variant:Fbuf.variant -> ?policy:policy -> unit -> t
(** The allocator is owned by the path's originator domain. [policy]
    defaults to {!Lifo}, the paper's choice: freed buffers are reused
    most-recently-freed first, so the reused buffer is the one most likely
    to still have physical memory and warm TLB entries. {!Fifo} exists for
    the ablation that quantifies that choice. *)

val default : Region.t -> owner:Fbufs_vm.Pd.t -> t
(** The default allocator used when the data path is unknown at allocation
    time: hands out uncached, volatile fbufs on a single-domain path; they
    may be sent to any domain, paying VM map manipulations per transfer. *)

val path : t -> Path.t
val variant : t -> Fbuf.variant
val owner : t -> Fbufs_vm.Pd.t
val region : t -> Region.t

val alloc : t -> npages:int -> Fbuf.t
(** Allocate an fbuf of exactly [npages] pages with one originator
    reference, writable by the originator. Reuses a cached buffer when one
    of the right size is available. Raises [Invalid_argument] if the
    allocator was torn down or [npages] is not positive. *)

val free_list_length : t -> int
val live_fbufs : t -> int

(** {2 Introspection}

    Read-only views consumed by the [Fbufs_check] invariant auditor; none
    of these mutate allocator state. *)

val parked : t -> Fbuf.t list
(** Every fbuf currently parked on the free lists, in unspecified order. *)

val free_extents : t -> (int * int) list
(** The free [(base_vpn, npages)] address extents, base-sorted and
    coalesced. *)

val owned_chunks : t -> (int * int) list
(** The [(base_vpn, nchunks)] chunk grants this allocator holds from the
    region, most recent first. *)

val is_torn_down : t -> bool

val reclaim : t -> ?older_than_us:float -> max_fbufs:int -> unit -> int
(** Pageout-daemon entry point: discard the physical memory of up to
    [max_fbufs] parked cached buffers, least recently used first,
    considering only buffers idle for at least [older_than_us] (default 0:
    any). Returns the number of buffers reclaimed. *)

val teardown : t -> unit
(** Destroy the endpoint: fully tear down free cached fbufs and return all
    chunk ownership to the kernel. Live fbufs (references still held by
    other domains) survive until their last free; their chunks are retained
    by the kernel until then, as the paper requires for terminating
    domains. Raises [Invalid_argument] if called twice. *)
