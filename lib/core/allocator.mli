(** Per-domain, per-path fbuf allocators: the lower level of the two-level
    allocation scheme.

    Each communication endpoint owns one allocator, bound to the I/O data
    path its traffic follows and to an fbuf variant. The allocator satisfies
    requests from, in order: (1) its LIFO free list of cached fbufs of the
    right size — the common case, requiring no VM work and no page clearing;
    (2) virtual address extents it already owns; (3) fresh chunks requested
    from the kernel's {!Region} (the rare, IPC-charged slow path).

    The LIFO discipline keeps the warmest buffers (those most likely to
    still have physical memory and live TLB entries) at the head. *)

type t

type policy = Lifo | Fifo

type share = {
  sh_dynamic : bool;
      (** when true, {!alloc} consults [sh_admit] before any state change;
          accounting-only (static) policies set it false and pay nothing on
          the admission path *)
  sh_admit : npages:int -> growth:int -> unit;
      (** admission decision for an allocation of [npages] pages whose
          effect on the path's held-page account would be [growth] pages
          (zero when a still-charged cached buffer would be reused).
          Return normally to admit; raise to refuse — the exception
          propagates out of {!alloc} with no allocator state changed. *)
  sh_grow : int -> unit;
      (** the path's held-page account grew by this many pages *)
  sh_shrink : int -> unit;
      (** the path's held-page account shrank by this many pages *)
}
(** Buffer-sharing policy hooks (see [Fbufs_policy]). A path's {e held}
    pages are those the allocator has charged to it: every Active fbuf
    plus parked fbufs still carrying their charge ([Fbuf.accounted]); the
    allocator reports every transition of that account and, for dynamic
    policies, asks permission before growing it. The charge moves only at
    allocator events (allocation, parking without frames, pageout, death),
    so the account cannot drift when a page fault re-materializes a
    paged-out parked buffer behind the allocator's back — such memory is
    charged back at the buffer's next allocation. *)

val set_share : t -> share option -> unit
(** Attach (or detach, with [None]) sharing-policy hooks. *)

val create :
  Region.t -> path:Path.t -> variant:Fbuf.variant -> ?policy:policy -> unit -> t
(** The allocator is owned by the path's originator domain. [policy]
    defaults to {!Lifo}, the paper's choice: freed buffers are reused
    most-recently-freed first, so the reused buffer is the one most likely
    to still have physical memory and warm TLB entries. {!Fifo} exists for
    the ablation that quantifies that choice. *)

val default : Region.t -> owner:Fbufs_vm.Pd.t -> t
(** The default allocator used when the data path is unknown at allocation
    time: hands out uncached, volatile fbufs on a single-domain path; they
    may be sent to any domain, paying VM map manipulations per transfer. *)

val path : t -> Path.t
val variant : t -> Fbuf.variant
val owner : t -> Fbufs_vm.Pd.t
val region : t -> Region.t

val alloc : t -> npages:int -> Fbuf.t
(** Allocate an fbuf of exactly [npages] pages with one originator
    reference, writable by the originator. Reuses a cached buffer when one
    of the right size is available. Raises [Invalid_argument] if the
    allocator was torn down or [npages] is not positive. When a dynamic
    {!share} policy is attached its admission hook runs first and may
    refuse by raising (e.g. [Fbufs_policy.Policy.Dropped]); refusal leaves
    the allocator unchanged. *)

val free_list_length : t -> int
val live_fbufs : t -> int

(** {2 Introspection}

    Read-only views consumed by the [Fbufs_check] invariant auditor; none
    of these mutate allocator state. *)

val parked : t -> Fbuf.t list
(** Every fbuf currently parked on the free lists, in unspecified order. *)

val free_extents : t -> (int * int) list
(** The free [(base_vpn, npages)] address extents, base-sorted and
    coalesced. *)

val owned_chunks : t -> (int * int) list
(** The [(base_vpn, nchunks)] chunk grants this allocator holds from the
    region, most recent first. *)

val is_torn_down : t -> bool

val needs_frames : t -> npages:int -> bool
(** Whether [alloc ~npages] right now would have to claim fresh physical
    frames — false exactly when the buffer the cache would hand out is
    still resident. Read-only; used by reservation checks in the
    congestion scenarios and by dynamic sharing policies. *)

val buffer_resident : Fbuf.t -> bool
(** Whether the buffer still holds physical memory (its originator mapping
    has a frame under its first page). Parked buffers lose residency to
    {!reclaim}/{!reclaim_one} and regain it, Active, on the originator's
    next touch. *)

val buffer_accounted : Fbuf.t -> bool
(** Whether the buffer's pages are currently charged to its path's
    held-page account ([Fbuf.accounted]). Implies residency for parked
    buffers; the converse can fail when a touch re-materialized a
    paged-out parked buffer. *)

val reclaim : t -> ?older_than_us:float -> max_fbufs:int -> unit -> int
(** Pageout-daemon entry point: discard the physical memory of up to
    [max_fbufs] parked cached buffers, least recently used first,
    considering only buffers idle for at least [older_than_us] (default 0:
    any). Returns the number of buffers reclaimed. *)

val reclaim_one : t -> Fbuf.t -> unit
(** Discard the physical memory of one specific parked buffer — the
    targeted form of {!reclaim}, used by the pageout daemon's deterministic
    sweep and by a dynamic sharing policy's reclaim-before-drop eviction.
    Raises [Invalid_argument] if the buffer is not parked on this
    allocator or holds no physical memory. *)

val teardown : t -> unit
(** Destroy the endpoint: fully tear down free cached fbufs and return all
    chunk ownership to the kernel. Live fbufs (references still held by
    other domains) survive until their last free; their chunks are retained
    by the kernel until then, as the paper requires for terminating
    domains. Raises [Invalid_argument] if called twice. *)
