open Fbufs_sim
module Mx = Fbufs_metrics.Metrics

type victim = Allocator.t * Fbuf.t

type t = {
  region : Region.t;
  low_water : int;
  order : victim list -> victim list;
  mutable allocators : Allocator.t list;
}

(* Global LRU: coldest parked buffer first across every registered
   allocator, ties on fbuf id (allocation order). The key is total (ids
   are unique), so the sweep order is deterministic regardless of
   registration or size-class iteration order — the old round-robin
   sweep was per-allocator LRU and ignored cache recency across paths. *)
let lru_order vs =
  List.sort
    (fun ((_, a) : victim) ((_, b) : victim) ->
      match compare a.Fbuf.last_alloc_us b.Fbuf.last_alloc_us with
      | 0 -> compare a.Fbuf.id b.Fbuf.id
      | c -> c)
    vs

let create region ?low_water_frames ?(order = lru_order) () =
  let m = Region.machine region in
  let low_water =
    match low_water_frames with
    | Some n -> n
    | None -> Phys_mem.total_frames m.Machine.pmem / 16
  in
  { region; low_water; order; allocators = [] }

let register t alloc = t.allocators <- alloc :: t.allocators

let victims_total =
  Mx.counter ~name:"fbufs_pageout_victims_total"
    ~help:"Fbufs evicted by pageout-daemon balance sweeps"
    ~labels:[ "machine" ] ()

let registered t = List.length t.allocators

let pressure t =
  let m = Region.machine t.region in
  Phys_mem.free_frames m.Machine.pmem < t.low_water

(* Every reclaimable (parked, still-resident) buffer of every registered
   allocator, paired with its allocator. *)
let candidates t =
  List.concat_map
    (fun alloc ->
      List.filter_map
        (fun fb ->
          if Allocator.buffer_resident fb then Some (alloc, fb) else None)
        (Allocator.parked alloc))
    t.allocators

let balance t =
  let m = Region.machine t.region in
  let reclaimed = ref 0 in
  let sp = Machine.span_begin m "pageout.balance" in
  (* Victim selection reasons about which frames are reachable, so the
     deferred-shootdown queue must be empty before the sweep starts. *)
  Fbufs_vm.Tlb_sync.drain m;
  (* One daemon scan costs a range operation's worth of work. *)
  Machine.charge ~kind:"pageout.scan" ~comp:Fbufs_metrics.Component.Alloc m
    m.Machine.cost.Cost_model.vm_range_op;
  (* The candidate list and its order are fixed at sweep start; the walk
     then reclaims victims in that order until pressure clears, so the
     reclaimed set is always a prefix of the ordered candidates. *)
  let ordered = t.order (candidates t) in
  List.iter
    (fun (alloc, fb) ->
      if pressure t then begin
        Allocator.reclaim_one alloc fb;
        incr reclaimed
      end)
    ordered;
  Stats.add m.Machine.stats "pageout.reclaimed" !reclaimed;
  (match Machine.metrics m with
  | None -> ()
  | Some mx ->
      if !reclaimed > 0 then
        Mx.add mx victims_total ~labels:[ m.Machine.name ]
          (float_of_int !reclaimed));
  (if Machine.tracing m then
     Machine.span_end m
       ~args:[ ("reclaimed", Fbufs_trace.Trace.Int !reclaimed) ]
       sp
   else Machine.span_end m sp);
  Machine.seq_point m "pageout.balance";
  !reclaimed
