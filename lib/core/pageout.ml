open Fbufs_sim
module Mx = Fbufs_metrics.Metrics

type t = {
  region : Region.t;
  low_water : int;
  mutable allocators : Allocator.t list;
}

let create region ?low_water_frames () =
  let m = Region.machine region in
  let low_water =
    match low_water_frames with
    | Some n -> n
    | None -> Phys_mem.total_frames m.Machine.pmem / 16
  in
  { region; low_water; allocators = [] }

let register t alloc = t.allocators <- alloc :: t.allocators

let victims_total =
  Mx.counter ~name:"fbufs_pageout_victims_total"
    ~help:"Fbufs evicted by pageout-daemon balance sweeps"
    ~labels:[ "machine" ] ()

let registered t = List.length t.allocators

let pressure t =
  let m = Region.machine t.region in
  Phys_mem.free_frames m.Machine.pmem < t.low_water

let balance t =
  let m = Region.machine t.region in
  let reclaimed = ref 0 in
  let sp = Machine.span_begin m "pageout.balance" in
  (* Victim selection reasons about which frames are reachable, so the
     deferred-shootdown queue must be empty before the sweep starts. *)
  Fbufs_vm.Tlb_sync.drain m;
  (* One daemon scan costs a range operation's worth of work. *)
  Machine.charge ~kind:"pageout.scan" ~comp:Fbufs_metrics.Component.Alloc m
    m.Machine.cost.Cost_model.vm_range_op;
  let rec sweep () =
    if pressure t then begin
      let progress = ref false in
      List.iter
        (fun alloc ->
          if pressure t && Allocator.reclaim alloc ~max_fbufs:1 () > 0 then begin
            incr reclaimed;
            progress := true
          end)
        t.allocators;
      if !progress then sweep ()
    end
  in
  sweep ();
  Stats.add m.Machine.stats "pageout.reclaimed" !reclaimed;
  (match Machine.metrics m with
  | None -> ()
  | Some mx ->
      if !reclaimed > 0 then
        Mx.add mx victims_total ~labels:[ m.Machine.name ]
          (float_of_int !reclaimed));
  (if Machine.tracing m then
     Machine.span_end m
       ~args:[ ("reclaimed", Fbufs_trace.Trace.Int !reclaimed) ]
       sp
   else Machine.span_end m sp);
  !reclaimed
