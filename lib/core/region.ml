open Fbufs_sim
open Fbufs_vm
module Comp = Fbufs_metrics.Component

type config = {
  base_vpn : int;
  region_pages : int;
  chunk_pages : int;
  max_chunks_per_allocator : int;
  zero_on_alloc : bool;
}

let default_config =
  {
    base_vpn = 0x40000;
    region_pages = 8192;
    chunk_pages = 16;
    max_chunks_per_allocator = 64;
    zero_on_alloc = false;
  }

type t = {
  m : Machine.t;
  kernel : Pd.t;
  config : config;
  nchunks : int;
  chunk_owner : int option array;  (* chunk index -> owning domain id *)
  owned_count : (int, int) Hashtbl.t;  (* domain id -> chunks owned *)
  chunk_fbufs : Fbuf.t list array;  (* chunk index -> overlapping fbufs *)
  dead_frame : Phys_mem.frame_id;
  mutable dead_reads : int;
  mutable cursor : int;  (* next-fit: first chunk to probe on alloc *)
  mutable free_count : int;  (* unowned chunks, for O(1) exhaustion *)
}

exception Chunk_limit_exceeded of string
exception Region_exhausted

let machine t = t.m
let kernel t = t.kernel
let config t = t.config

let in_region t ~vpn =
  vpn >= t.config.base_vpn && vpn < t.config.base_vpn + t.config.region_pages

let chunk_of t ~vpn = (vpn - t.config.base_vpn) / t.config.chunk_pages

(* Chunk-granular index: at most chunk_pages fbufs can overlap one chunk,
   so the per-chunk scan is short and registration is O(chunks spanned)
   instead of O(pages). *)
let fbuf_at t ~vpn =
  if not (in_region t ~vpn) then None
  else
    List.find_opt
      (fun (fb : Fbuf.t) ->
        vpn >= fb.Fbuf.base_vpn && vpn < fb.Fbuf.base_vpn + fb.Fbuf.npages)
      t.chunk_fbufs.(chunk_of t ~vpn)

(* Reads inside the region that the domain's own map cannot resolve are
   handled here. Two cases:

   - The page belongs to an fbuf the domain legitimately holds a reference
     to: transfers grant rights without eagerly building mappings, so the
     first touch materializes the mapping now. A receiver that never
     touches the data (the paper's netserver) therefore never pays any
     per-page VM cost.

   - Anything else: map the shared zeroed dead page read-only, so the
     receiver of a corrupt integrated DAG sees an empty leaf, not a
     crash. *)
let dead_page_hook t (dom : Pd.t) ~vpn ~write =
  if write || not (in_region t ~vpn) then false
  else
    match Vm_map.prot_of dom.Pd.map ~vpn with
    | Some p when Prot.can_read p -> false (* plain VM fault can resolve *)
    | Some _ -> false (* mapped without read permission: real violation *)
    | None -> (
        let lazy_map_frame frame =
          Machine.charge ~comp:Comp.Map t.m t.m.cost.Cost_model.fault_trap;
          Stats.incr t.m.stats "fbuf.lazy_map";
          Phys_mem.incref t.m.pmem frame;
          Vm_map.map_frame dom.Pd.map ~vpn ~frame ~prot:Prot.Read_only
            ~eager:true;
          true
        in
        let map_dead () =
          Machine.charge ~comp:Comp.Map t.m t.m.cost.Cost_model.fault_trap;
          Stats.incr t.m.stats "region.dead_page_read";
          t.dead_reads <- t.dead_reads + 1;
          Phys_mem.incref t.m.pmem t.dead_frame;
          Vm_map.map_frame dom.Pd.map ~vpn ~frame:t.dead_frame
            ~prot:Prot.Read_only ~eager:true;
          true
        in
        match fbuf_at t ~vpn with
        | Some fb
          when fb.Fbuf.state = Fbuf.Active && Fbuf.ref_count fb dom > 0 -> (
            match
              Vm_map.frame_of (Fbuf.originator fb).Pd.map ~vpn
            with
            | Some frame -> lazy_map_frame frame
            | None -> map_dead ())
        | Some _ | None -> map_dead ())

let create m ~kernel ?(config = default_config) () =
  if config.region_pages mod config.chunk_pages <> 0 then
    invalid_arg "Region.create: region_pages must be a multiple of chunk_pages";
  let dead_frame = Phys_mem.alloc m.Machine.pmem in
  Phys_mem.zero m.Machine.pmem dead_frame;
  let t =
    {
      m;
      kernel;
      config;
      nchunks = config.region_pages / config.chunk_pages;
      chunk_owner = Array.make (config.region_pages / config.chunk_pages) None;
      owned_count = Hashtbl.create 8;
      chunk_fbufs = Array.make (config.region_pages / config.chunk_pages) [];
      dead_frame;
      dead_reads = 0;
      cursor = 0;
      free_count = config.region_pages / config.chunk_pages;
    }
  in
  kernel.Pd.fault_hook <- Some (dead_page_hook t);
  t

let register_domain t (dom : Pd.t) =
  (* Reserving the range costs one map-level range operation; individual
     pages are mapped only as fbufs are transferred in. *)
  Machine.charge ~comp:Comp.Map t.m t.m.cost.Cost_model.vm_range_op;
  dom.Pd.fault_hook <- Some (dead_page_hook t)

let owned t (dom : Pd.t) =
  match Hashtbl.find_opt t.owned_count dom.Pd.id with Some n -> n | None -> 0

let chunks_owned t dom = owned t dom

let alloc_chunks t (dom : Pd.t) ~nchunks =
  if nchunks <= 0 then invalid_arg "Region.alloc_chunks: nchunks must be > 0";
  if owned t dom + nchunks > t.config.max_chunks_per_allocator then
    raise
      (Chunk_limit_exceeded
         (Printf.sprintf "%s would own %d chunks (limit %d)" dom.Pd.name
            (owned t dom + nchunks)
            t.config.max_chunks_per_allocator));
  (* Chunk requests from user domains travel to the kernel over IPC; this
     is the slow path the two-level allocator amortizes away. *)
  if not (Pd.equal dom t.kernel) then begin
    Machine.charge ~comp:Comp.Ipc t.m t.m.cost.Cost_model.ipc_call;
    Machine.charge ~comp:Comp.Ipc t.m t.m.cost.Cost_model.ipc_reply;
    Stats.incr t.m.stats "region.chunk_rpc"
  end;
  Machine.charge ~comp:Comp.Alloc t.m t.m.cost.Cost_model.vm_range_op;
  (* Next-fit search for a contiguous free run: resume from the rolling
     cursor and wrap around once, skipping past the blocking chunk on
     every failed probe. In the common append-mostly regime this is O(run
     length); the old first-fit rescan from chunk 0 was O(region). *)
  if nchunks > t.free_count then raise Region_exhausted;
  let limit = t.nchunks - nchunks in
  let rec scan start hi =
    if start > hi then None
    else
      let rec run i =
        if i = nchunks then -1
        else if t.chunk_owner.(start + i) = None then run (i + 1)
        else i
      in
      match run 0 with
      | -1 -> Some start
      | blocked -> scan (start + blocked + 1) hi
  in
  let start =
    match (if t.cursor > limit then None else scan t.cursor limit) with
    | Some s -> s
    | None -> (
        (* Wrapped pass covers runs that begin before the cursor. *)
        match scan 0 limit with
        | Some s -> s
        | None -> raise Region_exhausted)
  in
  for i = start to start + nchunks - 1 do
    t.chunk_owner.(i) <- Some dom.Pd.id
  done;
  t.cursor <- (if start + nchunks >= t.nchunks then 0 else start + nchunks);
  t.free_count <- t.free_count - nchunks;
  Hashtbl.replace t.owned_count dom.Pd.id (owned t dom + nchunks);
  Stats.add t.m.stats "region.chunks_granted" nchunks;
  t.config.base_vpn + (start * t.config.chunk_pages)

let free_chunks t (dom : Pd.t) ~vpn ~nchunks =
  let start = (vpn - t.config.base_vpn) / t.config.chunk_pages in
  if start < 0 || start + nchunks > t.nchunks then
    invalid_arg "Region.free_chunks: range outside region";
  for i = start to start + nchunks - 1 do
    (match t.chunk_owner.(i) with
    | Some id when id = dom.Pd.id -> ()
    | Some _ | None ->
        invalid_arg "Region.free_chunks: chunk not owned by domain");
    t.chunk_owner.(i) <- None
  done;
  t.free_count <- t.free_count + nchunks;
  Machine.charge ~comp:Comp.Alloc t.m t.m.cost.Cost_model.vm_range_op;
  Hashtbl.replace t.owned_count dom.Pd.id (owned t dom - nchunks)

let fbuf_chunk_span t (fb : Fbuf.t) =
  ( chunk_of t ~vpn:fb.Fbuf.base_vpn,
    chunk_of t ~vpn:(fb.Fbuf.base_vpn + fb.Fbuf.npages - 1) )

let register_fbuf t (fb : Fbuf.t) =
  let c0, c1 = fbuf_chunk_span t fb in
  for c = c0 to c1 do
    t.chunk_fbufs.(c) <- fb :: t.chunk_fbufs.(c)
  done

let unregister_fbuf t (fb : Fbuf.t) =
  let c0, c1 = fbuf_chunk_span t fb in
  for c = c0 to c1 do
    t.chunk_fbufs.(c) <-
      List.filter (fun (g : Fbuf.t) -> g.Fbuf.id <> fb.Fbuf.id)
        t.chunk_fbufs.(c)
  done

let registered_fbufs t =
  let seen = Hashtbl.create 64 in
  Array.fold_left
    (fun acc fbs ->
      List.fold_left
        (fun acc (fb : Fbuf.t) ->
          if Hashtbl.mem seen fb.Fbuf.id then acc
          else begin
            Hashtbl.add seen fb.Fbuf.id ();
            fb :: acc
          end)
        acc fbs)
    [] t.chunk_fbufs

let dead_page_reads t = t.dead_reads

(* Read-only introspection for the Fbufs_check invariant auditor. *)
let nchunks t = t.nchunks
let free_chunk_count t = t.free_count
let dead_frame_id t = t.dead_frame
let chunk_index t ~vpn = chunk_of t ~vpn

let chunk_owner_id t ~chunk =
  if chunk < 0 || chunk >= t.nchunks then
    invalid_arg "Region.chunk_owner_id: chunk outside region";
  t.chunk_owner.(chunk)
