open Fbufs_sim
open Fbufs_vm
module Mx = Fbufs_metrics.Metrics
module Comp = Fbufs_metrics.Component

type policy = Lifo | Fifo

(* Buffer-sharing hooks (see Fbufs_policy). The allocator stays ignorant
   of policy semantics: it reports page-pool growth/shrink events and, for
   dynamic policies, asks permission before any allocation that would grow
   this path's held-page footprint. "Held" pages are those the allocator
   has charged to the path: every Active fbuf, plus parked fbufs still
   carrying their charge (fb.accounted) — a buffer loses its charge when
   it parks without physical memory, is paged out, or dies, and is charged
   again at its next allocation. The charge bit, not instantaneous
   residency, drives grow/shrink: residency can change under the
   allocator's feet (a touch of a paged-out parked buffer faults frames
   back in), and deciding from it would leak or double-count. *)
type share = {
  sh_dynamic : bool;
  sh_admit : npages:int -> growth:int -> unit;
  sh_grow : int -> unit;
  sh_shrink : int -> unit;
}

(* One size class of parked cached fbufs, as a two-list queue: Lifo pushes
   and pops at [front]; Fifo pushes to [back] and pops from [front],
   reversing [back] only when [front] runs dry — O(1) amortized either
   way, where the old single list paid O(n) per Fifo append. *)
type cls = { mutable front : Fbuf.t list; mutable back : Fbuf.t list }

type t = {
  region : Region.t;
  path : Path.t;
  variant : Fbuf.variant;
  owner : Pd.t;
  policy : policy;
  free_classes : (int, cls) Hashtbl.t; (* npages -> parked fbufs *)
  mutable free_len : int; (* total parked, across classes *)
  mutable extents : (int * int) list; (* free (base_vpn, npages), sorted *)
  mutable chunks : (int * int) list; (* owned (base_vpn, nchunks) *)
  mutable live : int;
  mutable torn_down : bool;
  mutable share : share option;
}

let set_share t sh = t.share <- sh

let grow_hook t n =
  match t.share with None -> () | Some sh -> sh.sh_grow n

let shrink_hook t n =
  match t.share with None -> () | Some sh -> sh.sh_shrink n

let has_resident_memory (fb : Fbuf.t) =
  Vm_map.frame_of (Fbuf.originator fb).Pd.map ~vpn:fb.Fbuf.base_vpn <> None

let buffer_resident = has_resident_memory
let buffer_accounted (fb : Fbuf.t) = fb.Fbuf.accounted

let path t = t.path
let variant t = t.variant
let owner t = t.owner
let region t = t.region
let free_list_length t = t.free_len
let live_fbufs t = t.live

let alloc_total =
  Mx.counter ~name:"fbufs_alloc_total"
    ~help:"Fbuf allocations by outcome (cached hit vs fresh VM setup)"
    ~labels:[ "machine"; "path"; "result" ] ()

let free_depth =
  Mx.gauge ~name:"fbufs_free_list_depth"
    ~help:"Parked cached fbufs across all size classes"
    ~labels:[ "machine"; "path" ] ()

let free_class =
  Mx.gauge ~name:"fbufs_free_class_fbufs"
    ~help:"Parked cached fbufs in one size class"
    ~labels:[ "machine"; "path"; "npages" ] ()

let live_gauge =
  Mx.gauge ~name:"fbufs_live_fbufs" ~help:"Fbufs currently held by domains"
    ~labels:[ "machine"; "path" ] ()

let reclaimed_total =
  Mx.counter ~name:"fbufs_reclaimed_fbufs_total"
    ~help:"Parked fbufs whose physical memory the pageout daemon reclaimed"
    ~labels:[ "machine"; "path" ] ()

let path_labels t m = [ m.Machine.name; string_of_int t.path.Path.id ]

(* Depth and live-count gauges are re-set from the authoritative fields
   after every state change, so they cannot drift from the allocator. *)
let sync_gauges t =
  let m = Region.machine t.region in
  match Machine.metrics m with
  | None -> ()
  | Some mx ->
      let labels = path_labels t m in
      Mx.set mx free_depth ~labels (float_of_int t.free_len);
      Mx.set mx live_gauge ~labels (float_of_int t.live)

let note_class t npages delta =
  let m = Region.machine t.region in
  match Machine.metrics m with
  | None -> ()
  | Some mx ->
      Mx.add mx free_class
        ~labels:(path_labels t m @ [ string_of_int npages ])
        delta

let cls_for t npages =
  match Hashtbl.find t.free_classes npages with
  | c -> c
  | exception Not_found ->
      let c = { front = []; back = [] } in
      Hashtbl.add t.free_classes npages c;
      c

let push_parked t (fb : Fbuf.t) =
  let c = cls_for t fb.Fbuf.npages in
  (match t.policy with
  | Lifo -> c.front <- fb :: c.front
  | Fifo -> c.back <- fb :: c.back);
  t.free_len <- t.free_len + 1;
  note_class t fb.Fbuf.npages 1.0

(* Every parked fbuf, in unspecified order; callers that care must sort. *)
let parked_fbufs t =
  Hashtbl.fold
    (fun _ c acc -> List.rev_append c.back (c.front @ acc))
    t.free_classes []

let clear_parked t =
  (let m = Region.machine t.region in
   match Machine.metrics m with
   | None -> ()
   | Some mx ->
       Hashtbl.iter
         (fun npages _ ->
           Mx.set mx free_class
             ~labels:(path_labels t m @ [ string_of_int npages ])
             0.0)
         t.free_classes);
  Hashtbl.reset t.free_classes;
  t.free_len <- 0

(* Insert a free extent keeping the list sorted by base and coalescing
   extents that touch, so fragmented returns re-form allocatable runs
   (without this, a torn-down set of small fbufs could never satisfy a
   larger request without growing the chunk footprint). *)
let add_extent t ext =
  let rec go (base, n) = function
    | [] -> [ (base, n) ]
    | (b, m) :: rest ->
        if b + m = base then go (b, m + n) rest
        else if base + n = b then go (base, n + m) rest
        else if b + m < base then (b, m) :: go (base, n) rest
        else (base, n) :: (b, m) :: rest
  in
  t.extents <- go ext t.extents

let release_chunks t =
  List.iter
    (fun (vpn, n) -> Region.free_chunks t.region t.owner ~vpn ~nchunks:n)
    t.chunks;
  t.chunks <- []

(* Called by Transfer when the last reference to one of our fbufs drops. *)
let on_all_freed t (fb : Fbuf.t) =
  match fb.Fbuf.state with
  | Fbuf.Cached_free ->
      if t.torn_down then begin
        shrink_hook t fb.Fbuf.npages;
        fb.Fbuf.accounted <- false;
        Transfer.destroy_cached fb;
        Region.unregister_fbuf t.region fb;
        t.live <- t.live - 1;
        if t.live = 0 then release_chunks t
      end
      else begin
        (* A parked buffer only keeps its held-page charge while it also
           keeps its frames; an Active buffer is always charged. *)
        if not (has_resident_memory fb) then begin
          shrink_hook t fb.Fbuf.npages;
          fb.Fbuf.accounted <- false
        end;
        push_parked t fb;
        t.live <- t.live - 1
      end
  | Fbuf.Dead ->
      shrink_hook t fb.Fbuf.npages;
      fb.Fbuf.accounted <- false;
      Region.unregister_fbuf t.region fb;
      add_extent t (fb.Fbuf.base_vpn, fb.Fbuf.npages);
      t.live <- t.live - 1;
      if t.torn_down && t.live = 0 then release_chunks t
  | Fbuf.Active -> assert false

let on_all_freed t fb =
  on_all_freed t fb;
  sync_gauges t

let create region ~path ~variant ?(policy = Lifo) () =
  {
    region;
    path;
    variant;
    owner = Path.originator path;
    policy;
    free_classes = Hashtbl.create 8;
    free_len = 0;
    extents = [];
    chunks = [];
    live = 0;
    torn_down = false;
    share = None;
  }

let default region ~owner =
  create region ~path:(Path.create [ owner ]) ~variant:Fbuf.volatile_only ()

(* First-fit over the sorted, coalesced free extents; splits when the fit
   is loose. *)
let take_extent t ~npages =
  let rec loop acc = function
    | [] -> None
    | (base, n) :: rest when n >= npages ->
        let remainder =
          if n > npages then [ (base + npages, n - npages) ] else []
        in
        t.extents <- List.rev_append acc (remainder @ rest);
        Some base
    | e :: rest -> loop (e :: acc) rest
  in
  loop [] t.extents

let take_address_range t ~npages =
  match take_extent t ~npages with
  | Some base -> base
  | None ->
      let chunk_pages = (Region.config t.region).Region.chunk_pages in
      let nchunks = (npages + chunk_pages - 1) / chunk_pages in
      let base = Region.alloc_chunks t.region t.owner ~nchunks in
      t.chunks <- (base, nchunks) :: t.chunks;
      let slack = (nchunks * chunk_pages) - npages in
      if slack > 0 then add_extent t (base + npages, slack);
      base

(* O(1): one size-class lookup plus a queue pop. The selection is the same
   as the old whole-list scan — most (Lifo) or least (Fifo) recently freed
   buffer of exactly the requested size. *)
let pop_cached t ~npages =
  match Hashtbl.find t.free_classes npages with
  | exception Not_found -> None
  | c -> (
      let took fb =
        t.free_len <- t.free_len - 1;
        note_class t npages (-1.0);
        Some fb
      in
      match c.front with
      | fb :: rest ->
          c.front <- rest;
          took fb
      | [] -> (
          match List.rev c.back with
          | [] -> None
          | fb :: rest ->
              c.front <- rest;
              c.back <- [];
              took fb))

(* The buffer pop_cached would return, without popping it: front head, or
   the oldest of [back] when the front is dry. Only consulted on the
   admission path of a dynamic sharing policy, so the O(|back|) walk never
   taxes unmanaged allocators. *)
let peek_cached t ~npages =
  match Hashtbl.find t.free_classes npages with
  | exception Not_found -> None
  | c -> (
      match c.front with
      | fb :: _ -> Some fb
      | [] -> (
          match c.back with
          | [] -> None
          | l -> Some (List.nth l (List.length l - 1))))

let fresh_fbuf t ~npages =
  let m = Region.machine t.region in
  let base_vpn = take_address_range t ~npages in
  let zero = (Region.config t.region).Region.zero_on_alloc in
  for i = 0 to npages - 1 do
    Machine.charge ~kind:"page.alloc" ~comp:Comp.Alloc m
      m.Machine.cost.Cost_model.page_alloc;
    let f = Phys_mem.alloc m.Machine.pmem in
    if zero then begin
      Machine.charge ~kind:"page.zero" ~comp:Comp.Zero m
        m.Machine.cost.Cost_model.page_zero;
      Stats.incr m.Machine.stats "fbuf.page_zeroed";
      Phys_mem.zero m.Machine.pmem f
    end;
    Vm_map.map_frame t.owner.Pd.map ~vpn:(base_vpn + i) ~frame:f
      ~prot:Prot.Read_write ~eager:true
  done;
  let fb =
    Fbuf.make ~m ~id:(Machine.fresh_id m) ~base_vpn ~npages
      ~variant:t.variant ~path:t.path
  in
  Region.register_fbuf t.region fb;
  Stats.incr m.Machine.stats "fbuf.alloc_fresh";
  fb

let alloc t ~npages =
  if t.torn_down then invalid_arg "Allocator.alloc: allocator was torn down";
  if npages <= 0 then invalid_arg "Allocator.alloc: npages must be positive";
  let m = Region.machine t.region in
  (* Admission control: a dynamic buffer-sharing policy may veto the
     allocation before any state changes (the hook raises to refuse).
     Growth is the number of pages this allocation would add to the
     path's held-page account: zero only when a still-charged cached
     buffer would be reused. *)
  (match t.share with
  | None -> ()
  | Some sh ->
      if sh.sh_dynamic then
        let growth =
          if t.variant.Fbuf.cached then
            match peek_cached t ~npages with
            | Some fb when fb.Fbuf.accounted -> 0
            | Some _ | None -> npages
          else npages
        in
        sh.sh_admit ~npages ~growth);
  let fb, cache_hit =
    if t.variant.Fbuf.cached then
      match pop_cached t ~npages with
      | Some fb ->
          (* The fast path: mappings, frames and contents are all reusable;
             no VM work and no clearing. *)
          if not fb.Fbuf.accounted then grow_hook t npages;
          fb.Fbuf.accounted <- true;
          fb.Fbuf.state <- Fbuf.Active;
          Stats.incr m.Machine.stats "fbuf.alloc_cached_hit";
          (fb, true)
      | None ->
          let fb = fresh_fbuf t ~npages in
          grow_hook t npages;
          fb.Fbuf.accounted <- true;
          (fb, false)
    else begin
      let fb = fresh_fbuf t ~npages in
      grow_hook t npages;
      fb.Fbuf.accounted <- true;
      (fb, false)
    end
  in
  if Machine.tracing m then begin
    let open Fbufs_trace.Trace in
    Machine.trace_instant m ~domain:t.owner.Pd.name ~path_id:t.path.Path.id
      ~args:
        [
          ("fbuf", Int fb.Fbuf.id);
          ("npages", Int npages);
          ("cache", Str (if cache_hit then "hit" else "miss"));
        ]
      "fbuf.alloc";
    (* The async span is the causal backbone of one transfer: everything
       that happens to this buffer until its last free links to this id. *)
    Machine.async_begin m ~domain:t.owner.Pd.name ~path_id:t.path.Path.id
      ~id:fb.Fbuf.id "fbuf.life"
  end;
  fb.Fbuf.on_all_freed <- Some (on_all_freed t);
  fb.Fbuf.last_alloc_us <- Machine.now m;
  fb.Fbuf.xfer <- Machine.current_transfer m;
  Fbuf.add_ref fb t.owner;
  t.live <- t.live + 1;
  (match Machine.metrics m with
  | None -> ()
  | Some mx ->
      Mx.incr mx alloc_total
        ~labels:(path_labels t m @ [ (if cache_hit then "hit" else "fresh") ])
        ());
  sync_gauges t;
  fb

let reclaim t ?(older_than_us = 0.0) ~max_fbufs () =
  (* LRU approximation: victims are the least recently *used* parked
     buffers that still hold physical memory and have been idle past the
     horizon; already-reclaimed buffers are skipped so repeated daemon
     sweeps make real progress or report none. Ties on age break on fbuf
     id (allocation order) so the sweep is deterministic regardless of
     size-class iteration order. *)
  let now = Machine.now (Region.machine t.region) in
  let resident =
    List.filter
      (fun fb ->
        has_resident_memory fb
        && now -. fb.Fbuf.last_alloc_us >= older_than_us)
      (parked_fbufs t)
  in
  let by_age =
    List.sort
      (fun (a : Fbuf.t) (b : Fbuf.t) ->
        match compare a.Fbuf.last_alloc_us b.Fbuf.last_alloc_us with
        | 0 -> compare a.Fbuf.id b.Fbuf.id
        | c -> c)
      resident
  in
  let take = min (max 0 max_fbufs) (List.length by_age) in
  let victims = List.filteri (fun i _ -> i < take) by_age in
  List.iter
    (fun (v : Fbuf.t) ->
      Transfer.reclaim_memory v;
      (* A victim that was re-materialized by a stray touch after an
         earlier pageout carries no charge; only charged pages leave the
         held account. *)
      if v.Fbuf.accounted then begin
        shrink_hook t v.Fbuf.npages;
        v.Fbuf.accounted <- false
      end)
    victims;
  let m = Region.machine t.region in
  (match Machine.metrics m with
  | None -> ()
  | Some mx ->
      if take > 0 then
        Mx.add mx reclaimed_total ~labels:(path_labels t m)
          (float_of_int take));
  if take > 0 && Machine.tracing m then
    Machine.trace_instant m ~domain:t.owner.Pd.name ~path_id:t.path.Path.id
      ~args:[ ("fbufs", Fbufs_trace.Trace.Int take) ]
      "fbuf.reclaim";
  take

(* Targeted reclaim of one specific parked buffer, used by the pageout
   daemon's deterministic sweep order and by a dynamic sharing policy's
   reclaim-before-drop eviction. Same externally visible effect per victim
   as one step of [reclaim]. *)
let reclaim_one t (fb : Fbuf.t) =
  if fb.Fbuf.state <> Fbuf.Cached_free then
    invalid_arg "Allocator.reclaim_one: fbuf is not parked";
  if not (List.memq fb (parked_fbufs t)) then
    invalid_arg "Allocator.reclaim_one: fbuf is not parked on this allocator";
  if not (has_resident_memory fb) then
    invalid_arg "Allocator.reclaim_one: fbuf holds no physical memory";
  Transfer.reclaim_memory fb;
  if fb.Fbuf.accounted then begin
    shrink_hook t fb.Fbuf.npages;
    fb.Fbuf.accounted <- false
  end;
  let m = Region.machine t.region in
  (match Machine.metrics m with
  | None -> ()
  | Some mx -> Mx.add mx reclaimed_total ~labels:(path_labels t m) 1.0);
  if Machine.tracing m then
    Machine.trace_instant m ~domain:t.owner.Pd.name ~path_id:t.path.Path.id
      ~args:[ ("fbufs", Fbufs_trace.Trace.Int 1) ]
      "fbuf.reclaim"

let needs_frames t ~npages =
  if not t.variant.Fbuf.cached then true
  else
    match peek_cached t ~npages with
    | Some fb -> not (has_resident_memory fb)
    | None -> true

(* Read-only introspection for the Fbufs_check invariant auditor. *)
let parked = parked_fbufs
let free_extents t = t.extents
let owned_chunks t = t.chunks
let is_torn_down t = t.torn_down

let teardown t =
  if t.torn_down then invalid_arg "Allocator.teardown: already torn down";
  t.torn_down <- true;
  List.iter
    (fun fb ->
      if fb.Fbuf.accounted then begin
        shrink_hook t fb.Fbuf.npages;
        fb.Fbuf.accounted <- false
      end;
      Transfer.destroy_cached fb;
      Region.unregister_fbuf t.region fb)
    (parked_fbufs t);
  clear_parked t;
  if t.live = 0 then release_chunks t;
  sync_gauges t
