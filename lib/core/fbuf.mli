(** The fbuf: one or more contiguous virtual pages of I/O data.

    An fbuf lives at a fixed virtual address inside the globally shared fbuf
    region, so it is mapped at the same address in the originator and every
    receiver — no receiver-side address allocation and no pointer
    translation ever happen on a transfer.

    The four variants of the paper are the cross product of two flags:
    - [cached]: on last free the buffer keeps its mappings and returns to
      its path's LIFO free list instead of being torn down;
    - [volatile]: the originator keeps write permission across transfers
      unless a receiver explicitly secures the buffer.

    This module is the passive record; all semantics (and all cost
    accounting) live in {!Allocator} and {!Transfer}. *)

type variant = { cached : bool; volatile : bool }

val cached_volatile : variant
val volatile_only : variant  (** uncached, volatile *)

val cached_only : variant  (** cached, non-volatile *)

val plain : variant  (** uncached, non-volatile: the base mechanism *)

val variant_name : variant -> string

type state =
  | Active  (** allocated, holding data, references outstanding *)
  | Cached_free  (** parked on a path free list, mappings intact *)
  | Dead  (** torn down; using it is an error *)

type t = {
  id : int;
  base_vpn : int;
  npages : int;
  variant : variant;
  path : Path.t;
  m : Fbufs_sim.Machine.t;
  mutable state : state;
  mutable secured : bool;  (** originator's write permission removed *)
  refs : (int, int) Hashtbl.t;  (** domain id -> reference count *)
  mutable mapped_in : Fbufs_vm.Pd.t list;  (** receivers with live mappings *)
  mutable on_all_freed : (t -> unit) option;  (** allocator hook *)
  mutable last_alloc_us : float;
      (** simulated time of the most recent allocation; the pageout
          daemon's LRU approximation reclaims the least recently used
          parked buffers first *)
  mutable xfer : int;
      (** causal transfer ({!Fbufs_sim.Machine.current_transfer} at
          allocation) carried with the fbuf across domains; 0 = none *)
  mutable accounted : bool;
      (** whether this buffer's pages are charged to its path's held-page
          account (buffer-sharing policies). Maintained by the allocator
          at its own events — set on allocation, cleared when the buffer
          parks without physical memory, is paged out, or dies. Memory
          re-materialized by a touch of a paged-out parked buffer is
          deliberately not re-charged until the next allocation: page
          faults are invisible to the allocator, and accounting only at
          allocator events is what keeps the account drift-free. *)
}

val make :
  m:Fbufs_sim.Machine.t ->
  id:int ->
  base_vpn:int ->
  npages:int ->
  variant:variant ->
  path:Path.t ->
  t

val originator : t -> Fbufs_vm.Pd.t
val vaddr : t -> int
val size : t -> int
(** Bytes: npages * page size. *)

val ref_count : t -> Fbufs_vm.Pd.t -> int
val total_refs : t -> int
val add_ref : t -> Fbufs_vm.Pd.t -> unit
val drop_ref : t -> Fbufs_vm.Pd.t -> unit
(** Raises [Invalid_argument] if the domain holds no reference. *)

val is_mapped_in : t -> Fbufs_vm.Pd.t -> bool
(** True for the originator and for receivers with retained mappings. *)

val pp : Format.formatter -> t -> unit
