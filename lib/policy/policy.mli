(** Buffer-sharing policies: arbitration of the global fbuf pool between
    competing data paths under memory pressure.

    The paper's per-path LIFO caches are fixed-policy — nothing decides
    who keeps cached buffers, who gets reclaimed first, and who is refused
    admission when physical memory runs short. This module makes those
    decisions explicit behind one interface with two implementations:

    - {!Static}: today's behavior, exactly. No admission control, no
      policy charges, no eviction preference — attaching a static policy
      to an allocator reproduces the unmanaged goldens byte-for-byte; the
      hooks only maintain the held-page account for introspection.
    - {!Fb_dynamic}: FB-style dynamic thresholds (arXiv 2105.10553). A
      path of class [k] may hold at most [weight k * alpha * free_frames]
      pages; allocations that would grow a path past its threshold first
      reclaim parked buffers from over-threshold strictly-lower-class
      paths (reclaim-before-drop), and are refused with {!Dropped} only
      when no such victim exists. Because thresholds scale with remaining
      free memory, every class's allowance collapses as the pool empties
      and grows back as it drains — no static partitioning, no permanent
      starvation.

    A path's {e held} pages are those the allocator has charged to it:
    its Active fbufs plus its parked fbufs still carrying their charge
    ([Fbuf.accounted] — parked-and-charged implies resident, and the
    account moves only at allocator events, so it cannot drift when a
    fault re-materializes a paged-out buffer). Decisions are observable
    three ways: an event log for
    the differential checker ({!set_recording}/{!drain_events}), plain
    counters ({!totals}), and [fbufs_policy_*] registry metrics; dynamic
    decision work is charged to the [policy] cost component. *)

type klass = Control | Latency | Bulk
(** Service classes, highest priority first: kernel/control traffic,
    latency-sensitive RPC, bulk data movement. *)

type kind = Static | Fb_dynamic of { alpha : float }

exception Dropped of string
(** An allocation the dynamic policy refused; the message names the path,
    its held pages, the threshold, and the free-frame level. Raised out of
    [Allocator.alloc] before any allocator state changes. *)

val chaos_skip_threshold : bool ref
(** Test-only fault injection: when set, the admission check admits
    unconditionally (the threshold comparison is skipped) — the planted
    policy bug the differential checker must catch and shrink. Must stay
    [false] outside the checker's self-test. *)

val klass_label : klass -> string
(** ["control"], ["latency"], ["bulk"] — stable metric label values. *)

val rank : klass -> int
(** Reclaim priority, inverse of service priority: [Bulk] is 0 (evicted
    first), [Control] is 2 (evicted last). *)

val weight : klass -> float
(** Threshold weight of each class: 8 / 3 / 1 for control / latency /
    bulk. *)

val threshold : kind -> klass -> free_frames:int -> int
(** The held-page allowance of a path of this class when [free_frames]
    frames remain: [max_int] for {!Static},
    [weight klass * alpha * free_frames] (truncated) for {!Fb_dynamic}. *)

type t

type event =
  | Admit of {
      path : int;
      npages : int;
      growth : int;
      held : int;
      free : int;
      threshold : int;
    }
  | Drop of {
      path : int;
      npages : int;
      held : int;
      free : int;
      threshold : int;
    }
  | Evict of { victim_path : int; fbuf : int; npages : int; free : int }
      (** One admission decision unfolds as zero or more [Evict]s followed
          by exactly one [Admit] or [Drop]; each event snapshots the
          inputs ([held], [free], [threshold]) the decision was made from,
          so a checker can re-derive the verdict independently. *)

val create : Fbufs.Region.t -> kind -> t

val kind : t -> kind

val register : t -> Fbufs.Allocator.t -> klass:klass -> unit
(** Attach the policy to an allocator: installs [Allocator.share] hooks
    that maintain the held-page account and, for {!Fb_dynamic}, run the
    admission decision (whose hook refuses by raising {!Dropped}).
    Raises [Invalid_argument] if the allocator is already registered. *)

val unregister : t -> Fbufs.Allocator.t -> unit
(** Detach the hooks; unknown allocators are ignored. *)

val pageout_order :
  t -> Fbufs.Pageout.victim list -> Fbufs.Pageout.victim list
(** Victim ordering for [Pageout.create ~order]: {!Static} defers to the
    daemon's global LRU; {!Fb_dynamic} ranks buffers of over-threshold
    paths first (lowest class, then LRU, then id), judged at the
    sweep-start free level. *)

(** {2 Introspection} *)

val held : t -> Fbufs.Allocator.t -> int option
(** Held pages of a registered path (Active + parked still-charged). *)

val klass_of : t -> Fbufs.Allocator.t -> klass option

val over_threshold : t -> Fbufs.Allocator.t -> bool
(** Whether the path currently holds more than its threshold at the
    present free-frame level; always false for unregistered allocators
    and static policies. *)

val entries : t -> (Fbufs.Allocator.t * klass * int) list
(** All registered paths with their class and held pages, in registration
    order. *)

val totals : t -> int * int * int
(** Lifetime [(admitted, dropped, evicted)] decision counts. *)

(** {2 Decision log (differential checking)} *)

val set_recording : t -> bool -> unit
(** Enable the event log. Off by default; with recording off no events
    accumulate. *)

val drain_events : t -> event list
(** Return and clear the recorded events, oldest first. *)
