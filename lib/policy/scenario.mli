(** Congestion scenarios for the buffer-sharing ablation.

    Deterministic multi-path workloads on a small simulated host where
    the fbuf pool is genuinely contended — many senders converging on one
    sink ({!Incast}), staggered on/off senders hoarding parked buffers
    ({!Bursty}), and small RPCs racing bulk streamers ({!Mixed_rpc}).
    Each runs under a {!Policy.kind} at equal pool size, so the ablation
    table isolates exactly what the dynamic policy buys: which class's
    messages are dropped, how many reclaim-before-drop evictions paid for
    admissions, and how much the periodic pageout tick reclaimed. *)

type name = Incast | Bursty | Mixed_rpc

val all : name list
val label : name -> string

type class_stat = {
  cls : string;
  attempts : int;
  delivered : int;
  dropped : int;
}

type outcome = {
  scenario : string;
  policy : string;
  attempts : int;
  delivered : int;
  dropped : int;
  evictions : int;  (** admission-path reclaim-before-drop victims *)
  pageout_reclaims : int;  (** periodic daemon-tick reclaims *)
  delivered_bytes : int;
  elapsed_us : float;
  by_class : class_stat list;
}

val run : kind:Policy.kind -> name -> outcome
(** Run one scenario on a fresh host under the given policy. Fully
    deterministic: same inputs, same outcome, byte for byte. *)

val ablation : unit -> unit
(** Print the static-vs-dynamic comparison table over {!all} scenarios
    (the [buffer-sharing] ablation; golden-pinned). *)
