open Fbufs_sim
open Fbufs_vm
open Fbufs
module Testbed = Fbufs_harness.Testbed
module Report = Fbufs_harness.Report

type name = Incast | Bursty | Mixed_rpc

let all = [ Incast; Bursty; Mixed_rpc ]

let label = function
  | Incast -> "incast"
  | Bursty -> "bursty"
  | Mixed_rpc -> "mixed-rpc"

type class_stat = {
  cls : string;
  attempts : int;
  delivered : int;
  dropped : int;
}

type outcome = {
  scenario : string;
  policy : string;
  attempts : int;
  delivered : int;
  dropped : int;
  evictions : int;
  pageout_reclaims : int;
  delivered_bytes : int;
  elapsed_us : float;
  by_class : class_stat list;
}

let policy_label = function
  | Policy.Static -> "static"
  | Policy.Fb_dynamic _ -> "fb-dynamic"

(* One sending endpoint: its own domain, path and allocator, converging
   on the shared sink domain. *)
type endpoint = {
  alloc : Allocator.t;
  sender : Pd.t;
  npages : int;
  mutable live : Fbuf.t list;
  mutable ep_attempts : int;
  mutable ep_delivered : int;
  mutable ep_dropped : int;
}

type world = {
  tb : Testbed.t;
  kind : Policy.kind;
  pol : Policy.t;
  daemon : Pageout.t;
  sink : Pd.t;
  mutable reclaims : int;
  mutable bytes : int;
}

let make_world ~kind ~nframes =
  let tb = Testbed.create ~name:"policy-scn" ~nframes () in
  let pol = Policy.create tb.Testbed.region kind in
  let daemon =
    Pageout.create tb.Testbed.region ~order:(Policy.pageout_order pol) ()
  in
  let sink = Testbed.user_domain tb "sink" in
  { tb; kind; pol; daemon; sink; reclaims = 0; bytes = 0 }

let make_endpoint w ~name ~klass ~npages =
  let sender = Testbed.user_domain w.tb name in
  let alloc =
    Testbed.allocator w.tb ~domains:[ sender; w.sink ] Fbuf.cached_volatile
  in
  Policy.register w.pol alloc ~klass;
  Pageout.register w.daemon alloc;
  {
    alloc;
    sender;
    npages;
    live = [];
    ep_attempts = 0;
    ep_delivered = 0;
    ep_dropped = 0;
  }

let page_size w = w.tb.Testbed.m.Machine.cost.Cost_model.page_size

(* Attempt one message: allocate, write, send to the sink, secure, read.
   The buffer stays live (in flight) until the endpoint drains. Refusals
   come from the dynamic policy's admission check (Dropped) or, under the
   static policy, from the kernel's frame-reservation check — the static
   kernel has no admission control, so an allocation that needs fresh
   frames when none are free is simply lost. *)
let send_one w ep =
  ep.ep_attempts <- ep.ep_attempts + 1;
  let m = w.tb.Testbed.m in
  let attempt () =
    match w.kind with
    | Policy.Static ->
        if
          Allocator.needs_frames ep.alloc ~npages:ep.npages
          && Phys_mem.free_frames m.Machine.pmem < ep.npages
        then None
        else Some (Allocator.alloc ep.alloc ~npages:ep.npages)
    | Policy.Fb_dynamic _ -> (
        match Allocator.alloc ep.alloc ~npages:ep.npages with
        | fb -> Some fb
        | exception Policy.Dropped _ -> None)
  in
  match attempt () with
  | None -> ep.ep_dropped <- ep.ep_dropped + 1
  | Some fb ->
      let vaddr = fb.Fbuf.base_vpn * page_size w in
      Access.touch_write ep.sender ~vaddr ~npages:ep.npages;
      Transfer.send fb ~src:ep.sender ~dst:w.sink;
      Transfer.secure fb;
      Access.touch_read w.sink ~vaddr ~npages:ep.npages;
      ep.ep_delivered <- ep.ep_delivered + 1;
      w.bytes <- w.bytes + (ep.npages * page_size w);
      ep.live <- fb :: ep.live

(* The sink finishes with every in-flight buffer; last free parks them
   (resident) on the sender's allocator. *)
let drain w ep =
  List.iter
    (fun fb ->
      Transfer.free fb ~dom:w.sink;
      Transfer.free fb ~dom:ep.sender)
    (List.rev ep.live);
  ep.live <- []

(* A periodic pageout-daemon tick, identical under both policies (only
   the victim order differs). *)
let tick w = w.reclaims <- w.reclaims + Pageout.balance w.daemon

let class_stats groups =
  List.map
    (fun (cls, eps) ->
      {
        cls;
        attempts = List.fold_left (fun a e -> a + e.ep_attempts) 0 eps;
        delivered = List.fold_left (fun a e -> a + e.ep_delivered) 0 eps;
        dropped = List.fold_left (fun a e -> a + e.ep_dropped) 0 eps;
      })
    groups

let finish w ~scenario groups =
  let by_class = class_stats groups in
  let total f = List.fold_left (fun a c -> a + f c) 0 by_class in
  let _, _, evicted = Policy.totals w.pol in
  {
    scenario = label scenario;
    policy = policy_label w.kind;
    attempts = total (fun c -> c.attempts);
    delivered = total (fun c -> c.delivered);
    dropped = total (fun c -> c.dropped);
    evictions = evicted;
    pageout_reclaims = w.reclaims;
    delivered_bytes = w.bytes;
    elapsed_us = Machine.now w.tb.Testbed.m;
    by_class;
  }

(* Incast: sixteen bulk senders first fill the pool with their cached
   buffers, then latency-sensitive and control traffic converges on the
   sink and must find memory. The static kernel's pool is exhausted by
   the bulk fill, so fresh high-class allocations are lost until the
   periodic pageout tick limps along behind; the dynamic policy caps the
   bulk fill at its threshold and reclaims over-threshold bulk buffers
   on demand when the high classes surge. *)
let run_incast w =
  let bulk =
    List.init 16 (fun i ->
        make_endpoint w
          ~name:(Printf.sprintf "bulk%02d" i)
          ~klass:Policy.Bulk ~npages:4)
  in
  let lat =
    List.init 2 (fun i ->
        make_endpoint w
          ~name:(Printf.sprintf "lat%d" i)
          ~klass:Policy.Latency ~npages:2)
  in
  let ctl = make_endpoint w ~name:"ctl" ~klass:Policy.Control ~npages:1 in
  (* Phase 1: bulk fill, one burst of eight 4-page messages per sender,
     drained (parked resident) after each burst. *)
  List.iter
    (fun ep ->
      for _ = 1 to 8 do
        send_one w ep
      done;
      drain w ep)
    bulk;
  (* Phase 2: convergence rounds; rounds 5 and 8 surge. *)
  for round = 1 to 10 do
    let burst = if round = 5 || round = 8 then 20 else 12 in
    List.iter
      (fun ep ->
        for _ = 1 to burst do
          send_one w ep
        done)
      lat;
    for _ = 1 to 4 do
      send_one w ctl
    done;
    List.iter (drain w) lat;
    drain w ctl;
    if round mod 3 = 0 then tick w
  done;
  finish w ~scenario:Incast
    [ ("control", [ ctl ]); ("latency", lat); ("bulk", bulk) ]

(* Bursty on/off: eight bulk senders with staggered 50% duty cycles and a
   ramping burst width park ever more memory while idle; two always-on
   latency paths ride on top of whatever is left. *)
let run_bursty w =
  let bulk =
    List.init 8 (fun i ->
        make_endpoint w
          ~name:(Printf.sprintf "bulk%02d" i)
          ~klass:Policy.Bulk ~npages:4)
  in
  let lat =
    List.init 2 (fun i ->
        make_endpoint w
          ~name:(Printf.sprintf "lat%d" i)
          ~klass:Policy.Latency ~npages:2)
  in
  for slot = 0 to 29 do
    List.iteri
      (fun i ep ->
        if (slot + i) mod 4 < 2 then begin
          for _ = 1 to 3 + (slot / 6) do
            send_one w ep
          done;
          drain w ep
        end)
      bulk;
    List.iter
      (fun ep ->
        for _ = 1 to 2 do
          send_one w ep
        done;
        drain w ep)
      lat;
    if slot mod 8 = 7 then tick w
  done;
  finish w ~scenario:Bursty [ ("latency", lat); ("bulk", bulk) ]

(* Mixed RPC: small frequent control RPCs and mid-size latency RPCs
   interleaved with four bulk streamers that hold big in-flight windows. *)
let run_mixed w =
  let bulk =
    List.init 4 (fun i ->
        make_endpoint w
          ~name:(Printf.sprintf "bulk%02d" i)
          ~klass:Policy.Bulk ~npages:4)
  in
  let lat =
    List.init 2 (fun i ->
        make_endpoint w
          ~name:(Printf.sprintf "lat%d" i)
          ~klass:Policy.Latency ~npages:2)
  in
  let ctl = make_endpoint w ~name:"ctl" ~klass:Policy.Control ~npages:1 in
  for round = 1 to 8 do
    List.iter
      (fun ep ->
        for _ = 1 to 6 do
          send_one w ep
        done)
      bulk;
    List.iter
      (fun ep ->
        for _ = 1 to 4 do
          send_one w ep
        done;
        drain w ep)
      lat;
    for _ = 1 to 6 do
      send_one w ctl;
      drain w ctl
    done;
    List.iter (drain w) bulk;
    if round mod 2 = 0 then tick w
  done;
  finish w ~scenario:Mixed_rpc
    [ ("control", [ ctl ]); ("latency", lat); ("bulk", bulk) ]

let frames_for = function Incast -> 512 | Bursty -> 160 | Mixed_rpc -> 104

let run ~kind name =
  let w = make_world ~kind ~nframes:(frames_for name) in
  match name with
  | Incast -> run_incast w
  | Bursty -> run_bursty w
  | Mixed_rpc -> run_mixed w

let pct num den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let print_outcome o =
  Printf.printf "%s%s%s%s%s%s%s%s\n"
    (Report.cell ~width:10 o.scenario)
    (Report.cell ~width:11 o.policy)
    (Report.cell ~width:9 (string_of_int o.attempts))
    (Report.cell ~width:10 (string_of_int o.delivered))
    (Report.cell ~width:8 (string_of_int o.dropped))
    (Report.cell ~width:7 (Printf.sprintf "%.1f%%" (pct o.dropped o.attempts)))
    (Report.cell ~width:7 (string_of_int o.evictions))
    (Report.cell ~width:7 (string_of_int o.pageout_reclaims));
  List.iter
    (fun c ->
      Printf.printf "  %s%s%s%s\n"
        (Report.cell ~width:19 ("- " ^ c.cls))
        (Report.cell ~width:9 (string_of_int c.attempts))
        (Report.cell ~width:10 (string_of_int c.delivered))
        (Report.cell ~width:8 (string_of_int c.dropped)))
    o.by_class

(* The ablation the CI job runs: every congestion scenario under both
   policies at equal pool size, with the per-class decomposition that
   shows who pays the drops. *)
let ablation () =
  Report.print_title
    "Buffer sharing under memory pressure: static vs fb-dynamic";
  Printf.printf "%s%s%s%s%s%s%s%s\n"
    (Report.cell ~width:10 "scenario")
    (Report.cell ~width:11 "policy")
    (Report.cell ~width:9 "attempts")
    (Report.cell ~width:10 "delivered")
    (Report.cell ~width:8 "dropped")
    (Report.cell ~width:7 "drop%")
    (Report.cell ~width:7 "evict")
    (Report.cell ~width:7 "pgout");
  List.iter
    (fun name ->
      let s = run ~kind:Policy.Static name in
      let d = run ~kind:(Policy.Fb_dynamic { alpha = 0.5 }) name in
      print_outcome s;
      print_outcome d)
    all;
  print_newline ();
  Printf.printf
    "Equal pool per scenario; fb-dynamic thresholds are weight*alpha*free\n\
     (control 8, latency 3, bulk 1; alpha 0.5). 'evict' counts \
     reclaim-before-drop\n\
     victims taken from over-threshold lower classes at admission; 'pgout' \
     counts\n\
     periodic pageout-daemon reclaims (policy-ordered under fb-dynamic).\n"
