open Fbufs_sim
open Fbufs
module Mx = Fbufs_metrics.Metrics
module Comp = Fbufs_metrics.Component

type klass = Control | Latency | Bulk
type kind = Static | Fb_dynamic of { alpha : float }

exception Dropped of string

(* Test-only fault injection: skip the threshold comparison so every
   allocation is admitted regardless of the path's held pages — the
   planted bug the differential checker must catch and shrink. *)
let chaos_skip_threshold = ref false

let klass_label = function
  | Control -> "control"
  | Latency -> "latency"
  | Bulk -> "bulk"

(* Reclaim priority is the inverse of service priority: bulk buffers are
   evicted first, control buffers last. *)
let rank = function Bulk -> 0 | Latency -> 1 | Control -> 2

(* FB-style weights: a path's dynamic threshold is weight * alpha *
   remaining-free-frames, so higher classes may hold proportionally more
   of a scarce pool and the thresholds of every class collapse together
   as the pool empties. *)
let weight = function Control -> 8.0 | Latency -> 3.0 | Bulk -> 1.0

let threshold kind klass ~free_frames =
  match kind with
  | Static -> max_int
  | Fb_dynamic { alpha } ->
      int_of_float (weight klass *. alpha *. float_of_int free_frames)

type entry = {
  e_alloc : Allocator.t;
  e_klass : klass;
  mutable e_held : int; (* pages: Active + parked-resident, via hooks *)
}

type event =
  | Admit of {
      path : int;
      npages : int;
      growth : int;
      held : int;
      free : int;
      threshold : int;
    }
  | Drop of {
      path : int;
      npages : int;
      held : int;
      free : int;
      threshold : int;
    }
  | Evict of { victim_path : int; fbuf : int; npages : int; free : int }

type t = {
  kind : kind;
  region : Region.t;
  mutable entries : entry list; (* registration order *)
  mutable events : event list; (* newest first; see drain_events *)
  mutable recording : bool;
  mutable n_admitted : int;
  mutable n_dropped : int;
  mutable n_evicted : int;
}

let admitted_total =
  Mx.counter ~name:"fbufs_policy_admitted_total"
    ~help:"Allocations admitted by the buffer-sharing policy"
    ~labels:[ "machine"; "path"; "class" ] ()

let dropped_total =
  Mx.counter ~name:"fbufs_policy_dropped_total"
    ~help:"Allocations refused by the buffer-sharing policy"
    ~labels:[ "machine"; "path"; "class" ] ()

let evictions_total =
  Mx.counter ~name:"fbufs_policy_evictions_total"
    ~help:
      "Parked buffers reclaimed from over-threshold lower-priority paths \
       to admit an allocation"
    ~labels:[ "machine"; "path"; "class" ] ()

let held_gauge =
  Mx.gauge ~name:"fbufs_policy_held_pages"
    ~help:"Pages a policy-managed path currently holds (active + parked \
           resident)"
    ~labels:[ "machine"; "path" ] ()

let threshold_gauge =
  Mx.gauge ~name:"fbufs_policy_threshold_pages"
    ~help:"Dynamic held-page threshold at the path's last admission check"
    ~labels:[ "machine"; "path" ] ()

let create region kind =
  {
    kind;
    region;
    entries = [];
    events = [];
    recording = false;
    n_admitted = 0;
    n_dropped = 0;
    n_evicted = 0;
  }

let kind t = t.kind
let machine t = Region.machine t.region
let free_frames t = Phys_mem.free_frames (machine t).Machine.pmem
let find_entry t alloc = List.find_opt (fun e -> e.e_alloc == alloc) t.entries

let entry_labels t e =
  let m = machine t in
  let path = Allocator.path e.e_alloc in
  [ m.Machine.name; string_of_int path.Path.id; klass_label e.e_klass ]

let note_held t e =
  match Machine.metrics (machine t) with
  | None -> ()
  | Some mx ->
      let m = machine t in
      let path = Allocator.path e.e_alloc in
      Mx.set mx held_gauge
        ~labels:[ m.Machine.name; string_of_int path.Path.id ]
        (float_of_int e.e_held)

let record t ev = if t.recording then t.events <- ev :: t.events
let set_recording t on = t.recording <- on

let drain_events t =
  let evs = List.rev t.events in
  t.events <- [];
  evs

(* Victim selection for reclaim-before-drop: among paths of strictly
   lower class than the requester that are over their own threshold at
   the current free level, the coldest parked still-resident buffer —
   lowest class first, then least recently allocated, then fbuf id. *)
let next_victim t requester ~free =
  let candidates =
    List.concat_map
      (fun e ->
        if
          rank e.e_klass >= rank requester.e_klass
          || e.e_held <= threshold t.kind e.e_klass ~free_frames:free
        then []
        else
          List.filter_map
            (fun fb ->
              if Allocator.buffer_resident fb then Some (e, fb) else None)
            (Allocator.parked e.e_alloc))
      t.entries
  in
  let key (e, (fb : Fbuf.t)) =
    (rank e.e_klass, fb.Fbuf.last_alloc_us, fb.Fbuf.id)
  in
  match candidates with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun best c -> if key c < key best then c else best)
           first rest)

let admit t e ~npages ~growth =
  let m = machine t in
  Machine.charge ~kind:"policy.check" ~comp:Comp.Policy m
    m.Machine.cost.Cost_model.policy_check;
  let path = Allocator.path e.e_alloc in
  let path_id = path.Path.id in
  let rec decide () =
    let free = free_frames t in
    let thr = threshold t.kind e.e_klass ~free_frames:free in
    (match Machine.metrics m with
    | None -> ()
    | Some mx ->
        Mx.set mx threshold_gauge
          ~labels:[ m.Machine.name; string_of_int path_id ]
          (float_of_int (min thr max_int)));
    if growth = 0 || !chaos_skip_threshold || e.e_held + growth <= thr then begin
      record t
        (Admit
           { path = path_id; npages; growth; held = e.e_held; free;
             threshold = thr });
      t.n_admitted <- t.n_admitted + 1;
      match Machine.metrics m with
      | None -> ()
      | Some mx -> Mx.incr mx admitted_total ~labels:(entry_labels t e) ()
    end
    else
      match next_victim t e ~free with
      | Some (ve, fb) ->
          Machine.charge ~kind:"policy.victim_scan" ~comp:Comp.Policy m
            m.Machine.cost.Cost_model.policy_victim_scan;
          record t
            (Evict
               {
                 victim_path = (Allocator.path ve.e_alloc).Path.id;
                 fbuf = fb.Fbuf.id;
                 npages = fb.Fbuf.npages;
                 free;
               });
          t.n_evicted <- t.n_evicted + 1;
          (match Machine.metrics m with
          | None -> ()
          | Some mx ->
              Mx.incr mx evictions_total ~labels:(entry_labels t ve) ());
          Allocator.reclaim_one ve.e_alloc fb;
          decide ()
      | None ->
          record t
            (Drop
               { path = path_id; npages; held = e.e_held; free;
                 threshold = thr });
          t.n_dropped <- t.n_dropped + 1;
          (match Machine.metrics m with
          | None -> ()
          | Some mx -> Mx.incr mx dropped_total ~labels:(entry_labels t e) ());
          raise
            (Dropped
               (Printf.sprintf
                  "policy drop: path %d (%s) held %d + %d pages > threshold \
                   %d with %d frames free and no lower-class victim"
                  path_id (klass_label e.e_klass) e.e_held growth thr free))
  in
  decide ()

let register t alloc ~klass =
  (match find_entry t alloc with
  | Some _ -> invalid_arg "Policy.register: allocator already registered"
  | None -> ());
  (* Pre-existing parked buffers still carrying their allocation charge
     enter the held account; registering before first use is the normal
     pattern. *)
  let held0 =
    List.fold_left
      (fun acc fb ->
        if Allocator.buffer_accounted fb then acc + fb.Fbuf.npages else acc)
      0 (Allocator.parked alloc)
  in
  let e = { e_alloc = alloc; e_klass = klass; e_held = held0 } in
  t.entries <- t.entries @ [ e ];
  let dynamic = match t.kind with Static -> false | Fb_dynamic _ -> true in
  Allocator.set_share alloc
    (Some
       {
         Allocator.sh_dynamic = dynamic;
         sh_admit = (fun ~npages ~growth -> admit t e ~npages ~growth);
         sh_grow =
           (fun n ->
             e.e_held <- e.e_held + n;
             note_held t e);
         sh_shrink =
           (fun n ->
             e.e_held <- e.e_held - n;
             note_held t e);
       });
  note_held t e

let unregister t alloc =
  match find_entry t alloc with
  | None -> ()
  | Some e ->
      Allocator.set_share alloc None;
      t.entries <- List.filter (fun e' -> e' != e) t.entries

(* Pageout-daemon victim ordering: static defers to the daemon's global
   LRU; dynamic ranks over-threshold buffers (at sweep-start free level)
   first, lowest class first, then LRU — so pressure relief lands on the
   paths that exceed their fair share before it touches anyone else. *)
let pageout_order t (vs : Pageout.victim list) =
  match t.kind with
  | Static -> Pageout.lru_order vs
  | Fb_dynamic _ ->
      let m = machine t in
      Machine.charge ~kind:"policy.victim_scan" ~comp:Comp.Policy m
        m.Machine.cost.Cost_model.policy_victim_scan;
      let free = free_frames t in
      let key ((alloc, fb) : Pageout.victim) =
        match find_entry t alloc with
        | None -> (1, max_int, fb.Fbuf.last_alloc_us, fb.Fbuf.id)
        | Some e ->
            let over =
              e.e_held > threshold t.kind e.e_klass ~free_frames:free
            in
            ((if over then 0 else 1), rank e.e_klass, fb.Fbuf.last_alloc_us,
             fb.Fbuf.id)
      in
      List.sort (fun a b -> compare (key a) (key b)) vs

(* Introspection *)
let held t alloc =
  match find_entry t alloc with None -> None | Some e -> Some e.e_held

let klass_of t alloc =
  match find_entry t alloc with None -> None | Some e -> Some e.e_klass

let over_threshold t alloc =
  match find_entry t alloc with
  | None -> false
  | Some e ->
      e.e_held > threshold t.kind e.e_klass ~free_frames:(free_frames t)

let entries t =
  List.map (fun e -> (e.e_alloc, e.e_klass, e.e_held)) t.entries

let totals t = (t.n_admitted, t.n_dropped, t.n_evicted)
