(* Quickstart: the fbuf mechanism in five minutes.

   Creates a simulated host with a kernel and two user protection domains,
   sets up an I/O data path between them, and transfers data with
   cached/volatile fbufs — showing the one-time setup cost, the free reuse,
   the protection semantics, and the simulated-time accounting.

   Run with: dune exec examples/quickstart.exe *)

open Fbufs_sim
open Fbufs_vm
open Fbufs
module Testbed = Fbufs_harness.Testbed

let () =
  (* A DecStation-5000/200-class machine with a kernel and an fbuf region. *)
  let tb = Testbed.create () in
  let m = tb.Testbed.m in
  let producer = Testbed.user_domain tb "producer" in
  let consumer = Testbed.user_domain tb "consumer" in

  (* Buffers are allocated for a known I/O data path (originator first). *)
  let alloc = Testbed.allocator tb ~domains:[ producer; consumer ] Fbuf.cached_volatile in

  Printf.printf "-- first transfer (cold: pays allocation + mapping) --\n";
  let t0 = Machine.now m in
  let fb = Allocator.alloc alloc ~npages:2 in
  Fbuf_api.write fb ~as_:producer ~off:0 "hello from the producer domain";
  Transfer.send fb ~src:producer ~dst:consumer;
  (* Volatile fbufs stay writable by the producer until secured; a consumer
     that interprets the contents secures first (paper §3.2). *)
  Transfer.secure fb;
  let seen = Fbuf_api.read_string fb ~as_:consumer ~off:0 ~len:30 in
  Printf.printf "consumer read: %S\n" seen;
  let first_vaddr = Fbuf.vaddr fb in
  Printf.printf "same virtual address in both domains: %#x\n" first_vaddr;
  Transfer.free fb ~dom:consumer;
  Transfer.free fb ~dom:producer;
  Printf.printf "cold transfer took %.1f simulated us\n\n" (Machine.now m -. t0);

  Printf.printf "-- second transfer (warm: cached fbuf, no VM work) --\n";
  let t0 = Machine.now m in
  let fb2 = Allocator.alloc alloc ~npages:2 in
  Printf.printf "reused the same buffer: %b\n" (Fbuf.vaddr fb2 = first_vaddr);
  Fbuf_api.write fb2 ~as_:producer ~off:0 "round two, no page tables touched";
  Transfer.send fb2 ~src:producer ~dst:consumer;
  Transfer.secure fb2;
  ignore (Fbuf_api.read_string fb2 ~as_:consumer ~off:0 ~len:33);
  Transfer.free fb2 ~dom:consumer;
  Transfer.free fb2 ~dom:producer;
  Printf.printf "warm transfer took %.1f simulated us\n\n" (Machine.now m -. t0);

  Printf.printf "-- protection: receivers are read-only --\n";
  let fb3 = Allocator.alloc alloc ~npages:1 in
  Transfer.send fb3 ~src:producer ~dst:consumer;
  (try
     Fbuf_api.set_word fb3 ~as_:consumer ~off:0 42;
     print_endline "BUG: write went through"
   with Vm_map.Protection_violation v ->
     Printf.printf "consumer write to %#x faulted, as it must\n" v.vaddr);

  Printf.printf "\n-- volatile fbufs and securing --\n";
  (* The next three operations demonstrate the volatile-fbuf hazards the
     paper defines (§3.1–§3.2) — they violate the discipline on purpose,
     so the static typestate findings are suppressed by annotation. *)
  (Fbuf_api.set_word fb3 ~as_:producer ~off:0 1 [@lint.allow "C3"]);
  Printf.printf "producer can still write (volatile): word = %d\n"
    (Fbuf_api.word_at fb3 ~as_:consumer ~off:0 [@lint.allow "C4"]);
  Transfer.secure fb3;
  (try
     (Fbuf_api.set_word fb3 ~as_:producer ~off:0 2 [@lint.allow "C3"]);
     print_endline "BUG: write went through"
   with Vm_map.Protection_violation _ ->
     print_endline "after secure, the producer's write faults too");
  Transfer.free fb3 ~dom:consumer;
  Transfer.free fb3 ~dom:producer;

  Printf.printf "\n-- machine counters --\n";
  List.iter
    (fun k -> Printf.printf "%-24s %d\n" k (Stats.get m.Machine.stats k))
    [
      "fbuf.alloc_fresh"; "fbuf.alloc_cached_hit"; "fbuf.send";
      "fbuf.lazy_map"; "pmap.enter"; "tlb.miss"; "vm.fault";
    ]
