(* Large scientific data sets: the paper's third motivating application.

   A simulation domain streams a 16 MB dataset to an analysis domain in
   1 MB ADUs. The analysis side consumes the data through the
   generator-style interface (Msg.iter_units) the paper proposes for the
   new high-bandwidth I/O API: records are delivered at an
   application-defined granularity and only the records that straddle a
   buffer-fragment boundary pay a gather copy.

   End-to-end integrity is verified with checksums over the real simulated
   bytes.

   Run with: dune exec examples/scientific_transfer.exe *)

open Fbufs_sim
open Fbufs
module Msg = Fbufs_msg.Msg
module Ipc = Fbufs_ipc.Ipc
module Testbed = Fbufs_harness.Testbed

let adu_bytes = 1024 * 1024
let adus = 16
let record_bytes = 6000

let () =
  let tb = Testbed.create ~nframes:65536 () in
  let m = tb.Testbed.m in
  let sim = Testbed.user_domain tb "simulation" in
  let analysis = Testbed.user_domain tb "analysis" in
  let alloc =
    Testbed.allocator tb ~domains:[ sim; analysis ] Fbuf.cached_volatile
  in
  let conn = Ipc.connect tb.Testbed.region ~src:sim ~dst:analysis () in

  let rng = Rng.create 2026 in
  let records_seen = ref 0 in
  let tx_checksums = ref [] in
  let rx_checksums = ref [] in

  let t0 = Machine.now m in
  for _ = 1 to adus do
    (* The producer fills an ADU-sized fbuf with "simulation output". To
       exercise the aggregate object, each ADU is composed of two joined
       buffers (e.g. header block + payload block). *)
    let ps = Testbed.page_size tb in
    let head = Allocator.alloc alloc ~npages:(adu_bytes / ps / 4) in
    let tail = Allocator.alloc alloc ~npages:(adu_bytes * 3 / ps / 4) in
    Fbuf_api.write_bytes head ~as_:sim ~off:0 (Rng.bytes rng (Fbuf.size head));
    Fbuf_api.write_bytes tail ~as_:sim ~off:0 (Rng.bytes rng (Fbuf.size tail));
    let adu =
      Msg.join
        (Msg.of_fbuf head ~off:0 ~len:(Fbuf.size head))
        (Msg.of_fbuf tail ~off:0 ~len:(Fbuf.size tail))
    in
    tx_checksums := Msg.checksum adu ~as_:sim :: !tx_checksums;
    Ipc.call conn adu ~handler:(fun received ->
        (* The checksum interprets the bytes, so secure the volatile
           buffers against late producer writes first (paper §3.2). *)
        List.iter Transfer.secure (Msg.fbufs received);
        rx_checksums := Msg.checksum received ~as_:analysis :: !rx_checksums;
        (* Record-at-a-time consumption via the generator interface. *)
        Msg.iter_units received ~as_:analysis ~unit_size:record_bytes
          (fun record ->
            assert (Bytes.length record > 0);
            incr records_seen);
        Ipc.free_deferred conn received);
    Msg.free_all adu ~dom:sim
  done;
  let us = Machine.now m -. t0 in

  let total = adus * adu_bytes in
  Printf.printf "streamed %d MB in %d ADUs of %d KB\n" (total / 1024 / 1024)
    adus (adu_bytes / 1024);
  let expected =
    adus * ((adu_bytes + record_bytes - 1) / record_bytes)
  in
  Printf.printf "records consumed: %d of %d expected\n" !records_seen expected;
  Printf.printf "checksums match end-to-end: %b\n"
    (!tx_checksums = !rx_checksums);
  Printf.printf "gather copies for boundary-straddling records: %d\n"
    (Stats.get m.Machine.stats "msg.unit_gather");
  Printf.printf "application-to-application throughput: %.0f Mb/s (simulated)\n"
    (float_of_int total *. 8.0 /. us);
  assert (!tx_checksums = !rx_checksums);
  assert (!records_seen = expected);
  assert (Stats.get m.Machine.stats "msg.unit_gather" > 0)
