(* Command-line driver: regenerate any of the paper's tables and figures,
   run ablations, or dump the cost model. Every experiment accepts
   [--trace FILE] (Chrome trace_event JSON), [--jsonl FILE],
   [--metrics FILE] (Prometheus text, or JSON for .json paths) and
   [--spans FILE] (causal span trees as JSONL); with none of them,
   instrumentation stays disabled and output is identical to an
   uninstrumented build. *)

open Cmdliner
module H = Fbufs_harness

let table1 zero = H.Exp_table1.print (H.Exp_table1.run ~zero_on_alloc:zero ())

let remap () = H.Exp_remap.print (H.Exp_remap.run ())
let fig3 () = H.Exp_fig3.print (H.Exp_fig3.run ())
let fig4 () = H.Exp_fig4.print (H.Exp_fig4.run ())
let fig5 () = H.Exp_fig5.print (H.Exp_fig5.run ~uncached:false ())
let fig6 () = H.Exp_fig5.print (H.Exp_fig5.run ~uncached:true ())

(* Keep the table's names aligned with DESIGN.md section 6; [--only] is
   what lets Makefile targets (ablation-tlb) and CI run one ablation
   without paying for the whole suite. *)
let ablation_table =
  [
    ("security-zeroing", H.Ablation.security_zeroing);
    ("tlb-size", H.Ablation.tlb_size);
    ("tlb-elision", H.Ablation.tlb_elision);
    ("ipc-latency", H.Ablation.ipc_latency);
    ("ipc-facility", H.Ablation.ipc_facility);
    ("integrated-vs-rebuild", H.Ablation.integrated_vs_rebuild);
    ("securing-policy", H.Ablation.securing_policy);
    ("free-list-policy", H.Ablation.free_list_policy);
    ("window-size", H.Ablation.window_size);
    ("chunk-size", H.Ablation.chunk_size);
    ("adapter-demux", H.Ablation.adapter_demux);
    ("path-locality", H.Ablation.path_locality);
    ("pdu-size-cpu-load", H.Ablation.pdu_size_cpu_load);
    ("buffer-sharing", Fbufs_policy.Scenario.ablation);
  ]

let ablations only =
  match only with
  | None ->
      H.Ablation.run_all ();
      Fbufs_policy.Scenario.ablation ()
  | Some name -> (
      match List.assoc_opt name ablation_table with
      | Some f -> f ()
      | None ->
          Format.eprintf "ablation: unknown name %S; valid names:@.%a@." name
            (Format.pp_print_list ~pp_sep:Format.pp_print_newline
               (fun ppf (n, _) -> Format.fprintf ppf "  %s" n))
            ablation_table;
          exit 2)

let info_cmd () =
  Format.printf "DecStation 5000/200 cost model:@.%a@."
    Fbufs_sim.Cost_model.pp Fbufs_sim.Cost_model.decstation_5000_200

let all zero =
  table1 zero;
  remap ();
  fig3 ();
  fig4 ();
  fig5 ();
  fig6 ()

let zero_flag =
  let doc =
    "Enable security clearing (57us/page) of uncached allocations; the \
     paper's Table 1 excludes this cost."
  in
  Arg.(value & flag & info [ "zero-on-alloc" ] ~doc)

let no_elision_flag =
  let doc =
    "Disable generation-tagged TLB shootdown deferral and elision: every \
     protection downgrade and unmap pays the immediate per-page \
     shootdown, reproducing the pre-elision cost model exactly."
  in
  Arg.(value & flag & info [ "no-tlb-elision" ] ~doc)

let with_elision no_elision f =
  Fbufs_vm.Pmap.elision_enabled := not no_elision;
  Fun.protect
    ~finally:(fun () -> Fbufs_vm.Pmap.elision_enabled := true)
    f

let trace_file =
  let doc =
    "Write a Chrome trace_event JSON of every simulated mechanism (pmap \
     updates, TLB refills, fbuf cache hits/misses, IPC crossings, DMA) to \
     $(docv); load it in chrome://tracing or Perfetto."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")

let jsonl_file =
  let doc = "Write the raw event stream as one JSON object per line to $(docv)." in
  Arg.(value & opt (some string) None & info [ "jsonl" ] ~doc ~docv:"FILE")

let metrics_file =
  let doc =
    "Write the metrics exposition (live counters plus the per-component \
     cost ledger) to $(docv): JSON when the name ends in .json, Prometheus \
     text otherwise. Combines freely with $(b,--trace), $(b,--jsonl) and \
     $(b,--spans): one execution produces every requested output."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~doc ~docv:"FILE")

let spans_file =
  let doc =
    "Write causal span trees (one JSON object per line; transfers, \
     parent/child and follows-from edges, per-span Table 1 component \
     charges) to $(docv). With $(b,--metrics) also given, per-transfer \
     wall times land in the fbufs_transfer_wall_us quantile sketch of \
     that exposition — the run is executed once either way."
  in
  Arg.(value & opt (some string) None & info [ "spans" ] ~doc ~docv:"FILE")

let record_dir =
  let doc =
    "Arm the flight recorder: bounded rings over recent trace events and \
     head-sampled transfers, a seeded weighted event reservoir, and \
     online invariant monitors at sequence points. Anomalies (monitor \
     violations, policy drop spikes) write a post-mortem dump (JSONL, \
     Chrome trace, span JSONL, meta) under $(docv)."
  in
  Arg.(
    value
    & opt ~vopt:(Some "postmortem") (some string) None
    & info [ "record" ] ~doc ~docv:"DIR")

let dump_on_exit_flag =
  let doc =
    "With the recorder armed, always write a final post-mortem dump when \
     the run ends, bypassing the debounce and dump cap (implies \
     $(b,--record) with its default directory)."
  in
  Arg.(value & flag & info [ "dump-on-exit" ] ~doc)

(* Recorder arming sits innermost so it can tap sinks the outer wrappers
   installed (or install its own ring when a layer is absent); machines
   are created inside [f], after the monitors' sequence-point hook is in
   place. *)
let with_recorder ?dir ~dump_on_exit f =
  match (dir, dump_on_exit) with
  | None, false -> f ()
  | _ ->
      let module O = Fbufs_obs in
      let config =
        {
          O.Recorder.default with
          O.Recorder.dir =
            Option.value dir ~default:O.Recorder.default.O.Recorder.dir;
        }
      in
      let r = O.Recorder.create config in
      let mon = O.Monitor.create ~recorder:r O.Monitor.default in
      O.Recorder.with_armed r (fun () ->
          O.Monitor.with_installed mon (fun () ->
              let x = f () in
              if dump_on_exit then
                ignore (O.Recorder.trigger ~force:true r ~reason:"exit");
              x))

(* Wrap an experiment term so tracing, metering and span recording cover
   exactly its run. Spans sit innermost so their post-run export can
   observe transfer walls into the still-installed metrics instance. *)
let traced term =
  let wrap chrome jsonl metrics spans record dump_on_exit f =
    H.Tracing.with_trace ?chrome ?jsonl (fun () ->
        H.Metrics_run.with_metrics ?file:metrics (fun () ->
            H.Spans_run.with_spans ?jsonl:spans (fun () ->
                with_recorder ?dir:record ~dump_on_exit f)))
  in
  Term.(
    const wrap $ trace_file $ jsonl_file $ metrics_file $ spans_file
    $ record_dir $ dump_on_exit_flag $ term)

let cmd name doc term = Cmd.v (Cmd.info name ~doc) term

let thunk1 f =
  Term.(
    const (fun zero no_elision () -> with_elision no_elision (fun () -> f zero))
    $ zero_flag $ no_elision_flag)

let thunk0 f =
  Term.(
    const (fun no_elision () -> with_elision no_elision (fun () -> f ()))
    $ no_elision_flag)

let config_conv =
  let parse s =
    match s with
    | "kernel-kernel" -> Ok H.Exp_fig5.Kernel_kernel
    | "user-user" -> Ok H.Exp_fig5.User_user
    | "user-netserver-user" -> Ok H.Exp_fig5.User_netserver_user
    | _ ->
        Error
          (`Msg
            "expected kernel-kernel, user-user or user-netserver-user")
  in
  let print ppf c = Format.pp_print_string ppf (H.Exp_fig5.config_name c) in
  Arg.conv (parse, print)

let trace_cmd =
  let config =
    let doc = "Topology: kernel-kernel, user-user or user-netserver-user." in
    Arg.(
      value
      & opt config_conv H.Exp_fig5.User_user
      & info [ "config" ] ~doc ~docv:"CONFIG")
  in
  let bytes =
    let doc = "Message size in bytes." in
    Arg.(value & opt int 65536 & info [ "bytes" ] ~doc ~docv:"N")
  in
  let uncached =
    let doc = "Use uncached, non-volatile fbufs (the Figure 6 regime)." in
    Arg.(value & flag & info [ "uncached" ] ~doc)
  in
  let window =
    let doc = "Sliding-window size (messages in flight)." in
    Arg.(value & opt (some int) None & info [ "window" ] ~doc ~docv:"N")
  in
  let pdu_size =
    let doc = "IP PDU size in bytes." in
    Arg.(value & opt (some int) None & info [ "pdu-size" ] ~doc ~docv:"N")
  in
  let nmsgs =
    let doc = "Number of messages (default scales with size)." in
    Arg.(value & opt (some int) None & info [ "nmsgs" ] ~doc ~docv:"N")
  in
  let out =
    let doc =
      "Chrome trace output file (mechanism-level events; independent of \
       the causal span outputs, any combination may be requested)."
    in
    Arg.(
      value & opt string "fbufs_trace.json" & info [ "trace" ] ~doc ~docv:"FILE")
  in
  let run config bytes uncached window pdu_size nmsgs out jsonl metrics spans =
    H.Tracing.run_workload ~config ~bytes ~uncached ?window ?pdu_size ?nmsgs
      ~chrome:out ?jsonl ?metrics ?spans ()
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one fully traced end-to-end transfer and dump the event \
          timeline plus a per-path latency histogram summary; combine \
          with --metrics and --spans to meter the same single run")
    Term.(
      const run $ config $ bytes $ uncached $ window $ pdu_size $ nmsgs $ out
      $ jsonl_file $ metrics_file $ spans_file)

let spans_cmd =
  let config =
    let doc = "Topology: kernel-kernel, user-user or user-netserver-user." in
    Arg.(
      value
      & opt config_conv H.Exp_fig5.User_user
      & info [ "config" ] ~doc ~docv:"CONFIG")
  in
  (* Defaults kept small and fixed so the report is deterministic and
     readable: 4 messages of 16 KB with a window of 4 exercises
     pipelining (follows-from edges between transfers) without drowning
     the per-transfer breakdown. *)
  let bytes =
    let doc = "Message size in bytes." in
    Arg.(value & opt int 16384 & info [ "bytes" ] ~doc ~docv:"N")
  in
  let uncached =
    let doc = "Use uncached, non-volatile fbufs (the Figure 6 regime)." in
    Arg.(value & flag & info [ "uncached" ] ~doc)
  in
  let window =
    let doc = "Sliding-window size (messages in flight)." in
    Arg.(value & opt int 4 & info [ "window" ] ~doc ~docv:"N")
  in
  let pdu_size =
    let doc = "IP PDU size in bytes." in
    Arg.(value & opt (some int) None & info [ "pdu-size" ] ~doc ~docv:"N")
  in
  let nmsgs =
    let doc = "Number of messages." in
    Arg.(value & opt int 4 & info [ "nmsgs" ] ~doc ~docv:"N")
  in
  let out =
    let doc = "Also write the span trees as JSONL to $(docv)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~doc ~docv:"FILE")
  in
  let chrome =
    let doc =
      "Also write the span trees as a Chrome trace_event file (complete \
       events plus flow arrows for follows-from edges) to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "chrome" ] ~doc ~docv:"FILE")
  in
  let top =
    let doc = "Limit the per-transfer breakdown to the first $(docv) transfers." in
    Arg.(value & opt (some int) None & info [ "top" ] ~doc ~docv:"N")
  in
  let run config bytes uncached window pdu_size nmsgs out chrome metrics top =
    H.Tracing.run_workload ~config ~bytes ~uncached ~window ?pdu_size ~nmsgs
      ?spans:out ?spans_chrome:chrome ?metrics ~spans_summary:true ?top ()
  in
  Cmd.v
    (Cmd.info "spans"
       ~doc:
         "Run one end-to-end transfer with causal span recording and print \
          the critical-path report: per transfer, which Table 1 components \
          bound end-to-end latency (their costs sum exactly to the ledger \
          charge) and the slack of off-path work; --metrics additionally \
          feeds per-transfer walls into a mergeable quantile sketch")
    Term.(
      const run $ config $ bytes $ uncached $ window $ pdu_size $ nmsgs $ out
      $ chrome $ metrics_file $ top)

let check_cmd =
  let seeds =
    let doc = "Seed to check (repeatable). Default 1 (1, 2, 3 with --quick)." in
    Arg.(value & opt_all int [] & info [ "seed" ] ~doc ~docv:"N")
  in
  let ops =
    let doc = "Operations per run." in
    Arg.(value & opt int 2000 & info [ "ops" ] ~doc ~docv:"K")
  in
  let adversary =
    let doc =
      "Include adversarial operations (unauthorized access, use after \
       free, malformed DAGs, domain crashes, exhaustion)."
    in
    Arg.(value & flag & info [ "adversary" ] ~doc)
  in
  let quick =
    let doc = "CI preset: each seed in both normal and adversary mode, at most 500 ops." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let out =
    let doc = "On failure, also write the shrunk counterexample to $(docv)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~doc ~docv:"FILE")
  in
  let record =
    let doc =
      "Arm the flight recorder for the checked runs: documented refusals \
       (and any divergence raised while expecting one) trigger debounced \
       post-mortem dumps under $(docv), and a final dump is always \
       written when the runs finish."
    in
    Arg.(value & opt (some string) None & info [ "record" ] ~doc ~docv:"DIR")
  in
  let run seeds ops adversary quick out record =
    let seeds =
      match seeds with [] -> if quick then [ 1; 2; 3 ] else [ 1 ] | l -> l
    in
    let ops = if quick then min ops 500 else ops in
    let jobs =
      if quick then List.concat_map (fun s -> [ (s, false); (s, true) ]) seeds
      else List.map (fun s -> (s, adversary)) seeds
    in
    let run_jobs () =
      List.filter_map
        (fun (seed, adversary) ->
          let o = Fbufs_check.run_seed ~seed ~ops ~adversary in
          Format.printf "%a@." Fbufs_check.pp_outcome o;
          if Fbufs_check.Driver.failed o.Fbufs_check.report then Some o
          else None)
        jobs
    in
    let failures =
      match record with
      | None -> run_jobs ()
      | Some dir ->
          let module O = Fbufs_obs in
          let r =
            O.Recorder.create { O.Recorder.default with O.Recorder.dir }
          in
          Fbufs_check.Driver.refusal_hook :=
            Some
              (fun what ->
                O.Recorder.note r ~kind:"check.refusal"
                  ~args:[ ("op", Fbufs_trace.Trace.Str what) ]
                  ();
                ignore (O.Recorder.trigger r ~reason:("refusal:" ^ what)));
          Fun.protect
            ~finally:(fun () -> Fbufs_check.Driver.refusal_hook := None)
            (fun () ->
              O.Recorder.with_armed r (fun () ->
                  let failures = run_jobs () in
                  ignore (O.Recorder.trigger ~force:true r ~reason:"exit");
                  failures))
    in
    match failures with
    | [] -> ()
    | o :: _ ->
        (match out with
        | None -> ()
        | Some file ->
            let oc = open_out file in
            let ppf = Format.formatter_of_out_channel oc in
            Format.fprintf ppf "%a@." Fbufs_check.pp_outcome o;
            close_out oc);
        exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Differential check of the fbuf stack against its reference model \
          (randomized operation sequences; failures shrink to a minimal \
          replayable sequence)")
    Term.(const run $ seeds $ ops $ adversary $ quick $ out $ record)

let lint_cmd =
  let format =
    let doc = "Output format: text, json or sarif." in
    let fmt_conv =
      Arg.conv
        ( (function
          | "text" -> Ok `Text
          | "json" -> Ok `Json
          | "sarif" -> Ok `Sarif
          | _ -> Error (`Msg "expected text, json or sarif")),
          fun ppf f ->
            Format.pp_print_string ppf
              (match f with
              | `Text -> "text"
              | `Json -> "json"
              | `Sarif -> "sarif") )
    in
    Arg.(value & opt fmt_conv `Text & info [ "format" ] ~doc ~docv:"FMT")
  in
  let baseline =
    let doc =
      "Accepted-findings file (JSON array, normally lint_baseline.json). \
       Only findings absent from it fail the run; matching ignores line \
       numbers so entries survive unrelated edits."
    in
    Arg.(value & opt (some string) None & info [ "baseline" ] ~doc ~docv:"FILE")
  in
  let out =
    let doc = "Also write every finding as JSON to $(docv) (CI artifact)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~doc ~docv:"FILE")
  in
  let root =
    let doc =
      "Repository root to lint (default: nearest ancestor with a \
       dune-project)."
    in
    Arg.(value & opt (some string) None & info [ "root" ] ~doc ~docv:"DIR")
  in
  let run format baseline out root =
    let module L = Fbufs_lint in
    let root =
      match root with
      | Some r -> r
      | None -> (
          match L.Driver.find_root () with
          | Some r -> r
          | None ->
              Format.eprintf "lint: no dune-project above the working directory@.";
              exit 2)
    in
    let findings = L.Driver.run ~root in
    (match out with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        let ppf = Format.formatter_of_out_channel oc in
        L.Driver.render_json ppf findings;
        Format.pp_print_flush ppf ();
        close_out oc);
    let baseline =
      match baseline with
      | None -> []
      | Some file -> (
          try L.Driver.load_baseline file
          with Sys_error e | Invalid_argument e ->
            Format.eprintf "lint: bad baseline: %s@." e;
            exit 2)
    in
    let fresh = L.Driver.unbaselined ~baseline findings in
    (match format with
    | `Text -> L.Driver.render_text Format.std_formatter fresh
    | `Json -> L.Driver.render_json Format.std_formatter fresh
    | `Sarif -> L.Sarif.render Format.std_formatter fresh);
    if fresh <> [] then exit 1;
    (* Staleness gate: a baseline entry nothing matches any more is dead
       debt that would silently excuse a future regression. Fresh
       findings dominate (exit 1 above); staleness alone exits 3. *)
    let stale = L.Driver.stale_entries ~baseline findings in
    if stale <> [] then begin
      Format.eprintf
        "lint: %d stale baseline entr%s (no current finding matches) — \
         delete from the baseline:@."
        (List.length stale)
        (if List.length stale = 1 then "y" else "ies");
      List.iter
        (fun (f : L.Finding.t) ->
          Format.eprintf "  %s %s: %s@." f.rule f.file f.msg)
        stale;
      exit 3
    end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static fbuf-discipline analysis: parsetree lint of the repo's \
          sources (immutability, determinism, documented raises, \
          reference pairing, no handle laundering), interprocedural \
          typestate analysis of fbuf handles (use-after-free, leaks, \
          write-after-send, read-before-secure) plus abstract \
          interpretation of the declarative data-path specs")
    Term.(const run $ format $ baseline $ out $ root)

let exp_conv =
  Arg.conv
    ( (function
      | "table1" -> Ok `Table1
      | "remap" -> Ok `Remap
      | "fig3" -> Ok `Fig3
      | "fig4" -> Ok `Fig4
      | "fig5" -> Ok `Fig5
      | "fig6" -> Ok `Fig6
      | "all" -> Ok `All
      | _ ->
          Error
            (`Msg "expected table1, remap, fig3, fig4, fig5, fig6 or all")),
      fun ppf e ->
        Format.pp_print_string ppf
          (match e with
          | `Table1 -> "table1"
          | `Remap -> "remap"
          | `Fig3 -> "fig3"
          | `Fig4 -> "fig4"
          | `Fig5 -> "fig5"
          | `Fig6 -> "fig6"
          | `All -> "all") )

let experiment_arg =
  let doc = "Experiment to meter (table1, remap, fig3..fig6, all)." in
  Arg.(value & pos 0 exp_conv `Table1 & info [] ~doc ~docv:"EXPERIMENT")

let run_experiment experiment zero =
  match experiment with
  | `Table1 -> table1 zero
  | `Remap -> remap ()
  | `Fig3 -> fig3 ()
  | `Fig4 -> fig4 ()
  | `Fig5 -> fig5 ()
  | `Fig6 -> fig6 ()
  | `All -> all zero

(* [stats --watch] and [top] share this: a Top renderer driven by the
   machine tick hook, framing at fixed simulated intervals. *)
let with_top ~interval_us f =
  let own_mx, metrics =
    match !Fbufs_sim.Machine.default_metrics with
    | Some mx -> (false, mx)
    | None ->
        let mx = Fbufs_metrics.Metrics.create () in
        Fbufs_sim.Machine.default_metrics := Some mx;
        (true, mx)
  in
  let own_spans, sink =
    match !Fbufs_sim.Machine.default_spans with
    | Some s -> (false, s)
    | None ->
        let s = Fbufs_span.Span.create () in
        Fbufs_sim.Machine.default_spans := Some s;
        (true, s)
  in
  let top = Fbufs_obs.Top.create ~interval_us ~metrics () in
  Fun.protect
    ~finally:(fun () ->
      if own_mx then Fbufs_sim.Machine.default_metrics := None;
      if own_spans then Fbufs_sim.Machine.default_spans := None)
    (fun () ->
      let r = Fbufs_obs.Top.with_installed top f in
      (* With our own span sink, fold wall times into the sketch so the
         closing frame can print transfer quantiles. *)
      if own_spans then H.Spans_run.roll_transfer_walls metrics sink;
      Fbufs_obs.Top.final top;
      r)

let stats_cmd =
  let folded =
    let doc =
      "Write collapsed flamegraph stacks (machine;component;kind ns) to \
       $(docv); feed to flamegraph.pl or speedscope."
    in
    Arg.(value & opt (some string) None & info [ "folded" ] ~doc ~docv:"FILE")
  in
  let watch =
    let doc =
      "Re-emit a snapshot frame (counters with deltas, gauges, cost \
       shares) every $(docv) simulated microseconds while the experiment \
       runs, plus a closing frame — periodic observation on the simulated \
       clock, deterministic run to run."
    in
    Arg.(value & opt (some float) None & info [ "watch" ] ~doc ~docv:"US")
  in
  let run experiment zero no_elision metrics folded watch =
    with_elision no_elision (fun () ->
        H.Metrics_run.with_metrics ?file:metrics ?folded ~summary:true
          (fun () ->
            match watch with
            | Some interval_us ->
                with_top ~interval_us (fun () ->
                    run_experiment experiment zero)
            | None -> run_experiment experiment zero))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run an experiment with the metrics registry attached and print \
          the per-component cost-attribution breakdown (the component \
          column sums exactly to the run's total charged simulated time)")
    Term.(
      const run $ experiment_arg $ zero_flag $ no_elision_flag $ metrics_file
      $ folded $ watch)

let top_cmd =
  let interval =
    let doc = "Frame interval in simulated microseconds." in
    Arg.(value & opt float 1_000_000.0 & info [ "interval-us" ] ~doc ~docv:"US")
  in
  let run experiment zero no_elision interval =
    with_elision no_elision (fun () ->
        with_top ~interval_us:interval (fun () ->
            run_experiment experiment zero))
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Run an experiment with periodic snapshot frames on the simulated \
          timeline: throughput and drop counters with per-interval deltas, \
          held pages vs threshold, TLB shootdowns/elisions, per-component \
          cost shares from the ledger and transfer-wall quantiles from the \
          sketch")
    Term.(
      const run $ experiment_arg $ zero_flag $ no_elision_flag $ interval)

let bench_trend_cmd =
  let files =
    let doc =
      "Bench snapshots (JSON from bench --json) in chronological order; at \
       least two."
    in
    Arg.(value & pos_all file [] & info [] ~doc ~docv:"SNAPSHOT.json")
  in
  let tolerance =
    let doc =
      "Allowed growth of the post-changepoint mean over the \
       pre-changepoint mean, in percent."
    in
    Arg.(value & opt float 50.0 & info [ "tolerance-pct" ] ~doc ~docv:"PCT")
  in
  let json_out =
    let doc = "Also write the machine-readable verdict as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")
  in
  let run files tolerance_pct json_out =
    let module T = Fbufs_obs.Trend in
    if List.length files < 2 then begin
      Format.eprintf "bench-trend: need at least two snapshots@.";
      exit 2
    end;
    match T.analyze ~files ~tolerance_pct with
    | r ->
        print_string (T.render r);
        (match json_out with
        | None -> ()
        | Some file ->
            let oc = open_out file in
            output_string oc (Fbufs_trace.Json.to_string (T.to_json r));
            output_string oc "\n";
            close_out oc);
        if r.T.failed then exit 1
    | exception
        ( Fbufs_metrics.Bench_diff.Bad_snapshot msg
        | Fbufs_trace.Json.Parse_error msg ) ->
        Format.eprintf "bench-trend: %s@." msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "bench-trend"
       ~doc:
         "Analyze the whole committed bench-snapshot series: per-benchmark \
          slope and changepoint detection, failing (exit 1) when any \
          benchmark stepped up beyond the tolerance across its changepoint \
          or disappeared from the latest snapshot")
    Term.(const run $ files $ tolerance $ json_out)

let bench_diff_cmd =
  let old_file =
    let doc = "Baseline bench snapshot (JSON from bench --json)." in
    Arg.(required & pos 0 (some file) None & info [] ~doc ~docv:"OLD.json")
  in
  let new_file =
    let doc = "Candidate bench snapshot." in
    Arg.(required & pos 1 (some file) None & info [] ~doc ~docv:"NEW.json")
  in
  let tolerance =
    let doc = "Allowed ns/run growth per benchmark, in percent." in
    Arg.(value & opt float 25.0 & info [ "tolerance-pct" ] ~doc ~docv:"PCT")
  in
  let run old_file new_file tolerance_pct =
    let module B = Fbufs_metrics.Bench_diff in
    match
      B.diff ~old_:(B.load_file old_file) ~new_:(B.load_file new_file)
        ~tolerance_pct
    with
    | r ->
        print_string (B.render r);
        if r.B.failed then exit 1
    | exception (B.Bad_snapshot msg | Fbufs_trace.Json.Parse_error msg) ->
        Format.eprintf "bench-diff: %s@." msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two bench JSON snapshots and fail (exit 1) when any \
          benchmark regressed beyond the tolerance or disappeared")
    Term.(const run $ old_file $ new_file $ tolerance)

let cmds =
  [
    cmd "table1" "Table 1: per-page transfer costs" (traced (thunk1 table1));
    cmd "remap" "Section 2.2.1: DASH-style remap measurements"
      (traced (thunk0 remap));
    cmd "fig3" "Figure 3: single-boundary throughput vs message size"
      (traced (thunk0 fig3));
    cmd "fig4" "Figure 4: UDP/IP loopback throughput" (traced (thunk0 fig4));
    cmd "fig5" "Figure 5: end-to-end throughput, cached/volatile fbufs"
      (traced (thunk0 fig5));
    cmd "fig6" "Figure 6: end-to-end throughput, uncached fbufs"
      (traced (thunk0 fig6));
    (let only =
       let doc =
         "Run a single ablation by name (e.g. tlb-elision) instead of the \
          whole suite."
       in
       Arg.(value & opt (some string) None & info [ "only" ] ~doc ~docv:"NAME")
     in
     cmd "ablation" "Design-choice ablations (DESIGN.md section 6)"
       (traced
          Term.(
            const (fun only no_elision () ->
                with_elision no_elision (fun () -> ablations only))
            $ only $ no_elision_flag)));
    cmd "info" "Print the calibrated cost model" Term.(const info_cmd $ const ());
    cmd "all" "Run every experiment" (traced (thunk1 all));
    stats_cmd;
    top_cmd;
    bench_diff_cmd;
    bench_trend_cmd;
    trace_cmd;
    spans_cmd;
    check_cmd;
    lint_cmd;
  ]

let () =
  let doc = "fbufs (SOSP '93) reproduction: experiments and ablations" in
  exit (Cmd.eval (Cmd.group (Cmd.info "fbufs_cli" ~doc) cmds))
